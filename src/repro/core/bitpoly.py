"""Sparse polynomial accumulator for the guided S-polynomial reduction.

Under RATO every circuit polynomial is ``x + tail``, so each division step
of ``Spoly(f_w, f_g) ->_{F, F0}+ r`` *substitutes* a net variable by its
gate tail. This engine performs those substitutions on a sparse polynomial
over idempotent variables (monomials are ``frozenset`` of variable ids,
coefficients live in F_{2^k}), maintaining an occurrence index so each
substitution touches only the monomials that actually contain the variable.

The reduction modulo the vanishing polynomials ``x^2 - x`` is implicit in
the representation: set-union multiplication is exactly idempotent
multiplication. This mirrors the paper's F4-style custom reduction — same
normal forms, batch per-variable elimination.

The occurrence index is maintained *lazily*: deleting a term never touches
the index, so a bucket may hold monomials that have since cancelled or been
rewritten. Readers (``substitute``, ``contains_var``) filter through the
term dict and prune dead buckets as they go. Substitution accumulates the
product terms into a local delta dict first and merges it into the
polynomial in one pass — cancellations inside one substitution batch never
churn the shared index.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from ..gf import GF2m
from .gate_polys import BitTerms

__all__ = ["SubstitutionEngine"]

_EMPTY: FrozenSet[int] = frozenset()


class SubstitutionEngine:
    """Mutable sparse polynomial with per-variable substitution.

    ``indexed_vars`` restricts the occurrence index to the given variable
    ids — the ones that will ever be substituted. Callers that know the
    substitution schedule up front (the guided reduction only eliminates
    gate variables and each word's leading bit) skip indexing the primary
    input bits that make up the bulk of every monomial, which is most of
    the per-insert cost on wide circuits. Substituting a variable outside
    the index stays correct through a full-scan fallback.
    """

    __slots__ = (
        "field",
        "terms",
        "occ",
        "indexed",
        "peak_terms",
        "substitutions",
        "term_traffic",
    )

    def __init__(self, field: GF2m, indexed_vars: Optional[Set[int]] = None):
        self.field = field
        self.terms: Dict[FrozenSet[int], int] = {}
        self.occ: Dict[int, Set[FrozenSet[int]]] = {}
        self.indexed: Optional[FrozenSet[int]] = (
            frozenset(indexed_vars) if indexed_vars is not None else None
        )
        self.peak_terms = 0
        self.substitutions = 0
        self.term_traffic = 0  # total monomials written (work measure)

    def add_term(self, monomial: FrozenSet[int], coeff: int) -> None:
        """XOR-accumulate ``coeff * monomial`` into the polynomial."""
        if not coeff:
            return
        terms = self.terms
        current = terms.get(monomial)
        self.term_traffic += 1
        if current is None:
            terms[monomial] = coeff
            indexed = self.indexed
            occ = self.occ
            for var in monomial if indexed is None else monomial & indexed:
                bucket = occ.get(var)
                if bucket is None:
                    occ[var] = {monomial}
                else:
                    bucket.add(monomial)
        else:
            merged = current ^ coeff
            if merged:
                terms[monomial] = merged
            else:
                del terms[monomial]  # occ entries go stale, pruned on read

    def add_terms(self, items: Iterable[Tuple[FrozenSet[int], int]]) -> None:
        for monomial, coeff in items:
            self.add_term(monomial, coeff)

    def contains_var(self, var: int) -> bool:
        indexed = self.indexed
        if indexed is not None and var not in indexed:
            return any(var in monomial for monomial in self.terms)
        bucket = self.occ.get(var)
        if not bucket:
            if bucket is not None:
                del self.occ[var]
            return False
        terms = self.terms
        for monomial in bucket:
            if monomial in terms:
                return True
        del self.occ[var]  # every entry was stale
        return False

    def variables_present(self) -> Set[int]:
        present: Set[int] = set()
        for monomial in self.terms:
            present |= monomial
        return present

    def substitute(self, var: int, tail: BitTerms) -> int:
        """Replace ``var`` by ``tail`` everywhere; returns monomials touched.

        Implements one batch of division steps ``... ->_{x+tail}+ ...``: for
        every monomial ``var * base`` the term becomes ``tail * base`` (with
        idempotent monomial union and field-coefficient products).
        """
        bucket = self.occ.pop(var, None)
        terms = self.terms
        affected = []
        if bucket:
            for monomial in bucket:
                coeff = terms.pop(monomial, None)
                if coeff is not None:  # None: stale index entry
                    affected.append((monomial, coeff))
        elif self.indexed is not None and var not in self.indexed:
            # Unindexed variable: correctness fallback via a full scan.
            for monomial in [m for m in terms if var in m]:
                affected.append((monomial, terms.pop(monomial)))
        if not affected:
            return 0
        mul = self.field.mul
        tail_items = list(tail.items())
        var_singleton = frozenset((var,))
        delta: Dict[FrozenSet[int], int] = {}
        delta_get = delta.get
        for monomial, coeff in affected:
            base = monomial - var_singleton
            for tail_monomial, tail_coeff in tail_items:
                key = base | tail_monomial
                cc = coeff if tail_coeff == 1 else mul(coeff, tail_coeff)
                cur = delta_get(key)
                delta[key] = cc if cur is None else cur ^ cc
        self.term_traffic += len(affected) * len(tail_items)
        occ = self.occ
        indexed = self.indexed
        terms_get = terms.get
        for key, cc in delta.items():
            if not cc:
                continue  # cancelled within the batch
            cur = terms_get(key)
            if cur is None:
                terms[key] = cc
                for v in key if indexed is None else key & indexed:
                    b = occ.get(v)
                    if b is None:
                        occ[v] = {key}
                    else:
                        b.add(key)
            else:
                merged = cur ^ cc
                if merged:
                    terms[key] = merged
                else:
                    del terms[key]
        self.substitutions += 1
        if len(terms) > self.peak_terms:
            self.peak_terms = len(terms)
        return len(affected)

    def snapshot(self) -> Dict[FrozenSet[int], int]:
        return dict(self.terms)

    def __len__(self) -> int:
        return len(self.terms)
