"""The Refined Abstraction Term Order (RATO) — Definition 5.1.

The Abstraction Term Order (Definition 4.2) is any lex order with
``circuit bits > output words > input words``. Its refinement fixes the
relative order of the circuit bits by *reverse topological level*: a net
closer to the primary outputs ranks higher. Under RATO every circuit
polynomial is ``x_out + tail`` with pairwise relatively-prime leading
terms (each net is driven once), so the product criterion eliminates all
critical pairs except the single ``(f_w, f_g)`` pair that seeds the guided
reduction of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..obs.spans import span

__all__ = ["RatoOrdering", "build_rato", "build_unrefined_order"]


@dataclass
class RatoOrdering:
    """Variable ranking for the abstraction: index 0 is the highest.

    ``gate_nets`` come first (reverse topological level ascending — output
    side first), then ``input_bits`` (primary inputs), then the output
    word(s), then the input words. ``var_ids`` assigns each variable a dense
    integer id in ranking order, so *smaller id == higher RATO rank*.
    """

    gate_nets: List[str]
    input_bits: List[str]
    output_words: List[str]
    input_words: List[str]
    var_ids: Dict[str, int]

    @property
    def variables(self) -> List[str]:
        return self.gate_nets + self.input_bits + self.output_words + self.input_words

    def id_of(self, name: str) -> int:
        return self.var_ids[name]


def _assemble(
    circuit: Circuit,
    gate_nets: List[str],
    output_words: Optional[Sequence[str]] = None,
) -> RatoOrdering:
    input_bits = list(circuit.inputs)
    out_words = list(output_words) if output_words is not None else list(circuit.output_words)
    in_words = list(circuit.input_words)
    variables = gate_nets + input_bits + out_words + in_words
    var_ids = {name: i for i, name in enumerate(variables)}
    if len(var_ids) != len(variables):
        raise ValueError("variable name collision between nets and word names")
    return RatoOrdering(gate_nets, input_bits, out_words, in_words, var_ids)


def build_rato(
    circuit: Circuit, output_words: Optional[Sequence[str]] = None
) -> RatoOrdering:
    """RATO for ``circuit``: reverse-topological ranking of the gate nets."""
    with span("rato_setup", gates=circuit.num_gates()):
        levels = circuit.reverse_topological_levels()
        # Bucket by level, then sort each (small) bucket by name: same
        # ordering as sorting (level, net) pairs, without allocating a key
        # tuple per net or calling back into a lambda N log N times.
        buckets: Dict[int, List[str]] = {}
        for net, level in levels.items():
            bucket = buckets.get(level)
            if bucket is None:
                buckets[level] = [net]
            else:
                bucket.append(net)
        gate_nets: List[str] = []
        for level in sorted(buckets):
            gate_nets.extend(sorted(buckets[level]))
        return _assemble(circuit, gate_nets, output_words)


def build_unrefined_order(
    circuit: Circuit,
    output_words: Optional[Sequence[str]] = None,
    shuffle_seed: Optional[int] = None,
) -> RatoOrdering:
    """An *unrefined* abstraction order: circuit bits in arbitrary order.

    Definition 4.2 allows any relative order among the circuit variables;
    this builds one that ignores circuit structure (alphabetical, or
    shuffled when ``shuffle_seed`` is given). Used by the RATO ablation
    benchmark to show why the refinement matters.
    """
    gate_nets = sorted(gate.output for gate in circuit.gates)
    if shuffle_seed is not None:
        import random

        random.Random(shuffle_seed).shuffle(gate_nets)
    return _assemble(circuit, gate_nets, output_words)
