"""The paper's core contribution: word-level abstraction via Gröbner bases."""

from .abstraction import (
    AbstractionResult,
    AbstractionStats,
    abstract_all_outputs,
    abstract_circuit,
    extract_canonical,
    word_ring_for,
)
from .bitpoly import SubstitutionEngine
from .composition import (
    HierarchicalAbstraction,
    abstract_hierarchy,
    compose_polynomials,
)
from .extractor import CircuitIdeal, circuit_ideal
from .gate_polys import BitTerms, gate_tail
from .rato import RatoOrdering, build_rato, build_unrefined_order

__all__ = [
    "abstract_circuit",
    "abstract_all_outputs",
    "extract_canonical",
    "AbstractionResult",
    "AbstractionStats",
    "word_ring_for",
    "SubstitutionEngine",
    "abstract_hierarchy",
    "HierarchicalAbstraction",
    "compose_polynomials",
    "circuit_ideal",
    "CircuitIdeal",
    "gate_tail",
    "BitTerms",
    "build_rato",
    "build_unrefined_order",
    "RatoOrdering",
]
