"""repro — word-level abstraction and equivalence verification of Galois
field arithmetic circuits via Gröbner bases.

Reproduction of: Pruss, Kalla, Enescu, *Equivalence Verification of Large
Galois Field Arithmetic Circuits using Word-Level Abstraction via Gröbner
Bases*, DAC 2014.

Quickstart::

    from repro import GF2m, verify_equivalence
    from repro.synth import mastrovito_multiplier, montgomery_multiplier

    field = GF2m(16)
    spec = mastrovito_multiplier(field)
    impl = montgomery_multiplier(field)
    result = verify_equivalence(spec, impl, field)
    assert result.equivalent
"""

from .core import abstract_circuit, abstract_hierarchy
from .gf import GF2m, GFElement, nist_polynomial
from .verify import verify_equivalence

__version__ = "1.0.0"

__all__ = [
    "GF2m",
    "GFElement",
    "nist_polynomial",
    "abstract_circuit",
    "abstract_hierarchy",
    "verify_equivalence",
    "__version__",
]
