"""CNF formulas in DIMACS-style integer literal encoding.

Variables are positive integers; a literal is ``+v`` or ``-v``; a clause is
a tuple of literals. :class:`CNF` tracks the variable counter and offers
DIMACS serialisation for interoperability.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["CNF"]


class CNF:
    """A growable CNF formula."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        for lit in clause:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            if abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references an unallocated variable")
        self.clauses.append(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def to_dimacs(self) -> str:
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(map(str, clause)) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        cnf = cls()
        declared_vars: Optional[int] = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                declared_vars = int(parts[2])
                cnf.num_vars = declared_vars
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            if literals:
                cnf.num_vars = max(cnf.num_vars, max(abs(l) for l in literals))
                cnf.clauses.append(tuple(literals))
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True when the assignment satisfies every clause."""
        for clause in self.clauses:
            if not any(
                assignment.get(abs(lit), False) == (lit > 0) for lit in clause
            ):
                return False
        return True

    def __len__(self) -> int:
        return len(self.clauses)

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
