"""A CDCL SAT solver (the stand-in for the paper's circuit-SAT baseline).

Conflict-driven clause learning with:

- two-watched-literal unit propagation,
- first-UIP conflict analysis with clause minimisation by self-subsumption
  against reason clauses,
- VSIDS-style activity-based decisions with exponential decay,
- Luby-sequence restarts,
- optional conflict budget so equivalence sweeps can time out gracefully.

This is the decision procedure behind the miter-based equivalence baseline
(Sec. 6's ABC/CSAT comparison): on structurally dissimilar multipliers it
exhibits the expected exponential blow-up, which the benchmarks demonstrate.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .cnf import CNF

__all__ = ["SatSolver", "SatResult", "solve"]


class SatResult:
    """Outcome of a SAT call: status plus model or proof-of-work stats."""

    __slots__ = ("status", "model", "conflicts", "decisions", "propagations")

    def __init__(
        self,
        status: str,
        model: Optional[Dict[int, bool]] = None,
        conflicts: int = 0,
        decisions: int = 0,
        propagations: int = 0,
    ):
        if status not in ("sat", "unsat", "unknown"):
            raise ValueError(f"bad status {status!r}")
        self.status = status
        self.model = model
        self.conflicts = conflicts
        self.decisions = decisions
        self.propagations = propagations

    def __repr__(self) -> str:
        return f"SatResult({self.status}, conflicts={self.conflicts})"


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    while True:
        k = i.bit_length()  # 2^(k-1) <= i < 2^k
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """CDCL over an immutable input CNF (learnt clauses kept internally)."""

    def __init__(self, cnf: CNF):
        self.num_vars = cnf.num_vars
        self.clauses: List[List[int]] = [list(c) for c in cnf.clauses if c]
        if any(len(c) == 0 for c in cnf.clauses):
            self.trivially_unsat = True
        else:
            self.trivially_unsat = False
        # assignment[v]: None unassigned, else bool
        self.assign: List[Optional[bool]] = [None] * (self.num_vars + 1)
        self.level: List[int] = [0] * (self.num_vars + 1)
        self.reason: List[Optional[int]] = [None] * (self.num_vars + 1)
        self.activity: List[float] = [0.0] * (self.num_vars + 1)
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.watches: Dict[int, List[int]] = {}
        self.polarity: List[bool] = [False] * (self.num_vars + 1)
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        # Lazy max-activity heap of (-activity, var); stale entries are
        # re-pushed on pop, assigned ones skipped.
        self._order_heap: List[Tuple[float, int]] = [
            (0.0, v) for v in range(1, self.num_vars + 1)
        ]
        heapq.heapify(self._order_heap)
        for idx, clause in enumerate(self.clauses):
            self._watch_clause(idx)

    # -- watched literals ------------------------------------------------------

    def _watch_clause(self, idx: int) -> None:
        clause = self.clauses[idx]
        if len(clause) >= 2:
            self.watches.setdefault(clause[0], []).append(idx)
            self.watches.setdefault(clause[1], []).append(idx)

    def _value(self, lit: int) -> Optional[bool]:
        v = self.assign[abs(lit)]
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: int, reason: Optional[int]) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[int]:
        """Unit propagation; returns a conflicting clause index or None."""
        head = getattr(self, "_qhead", 0)
        assign = self.assign
        clauses = self.clauses
        trail = self.trail
        watches = self.watches
        while head < len(trail):
            lit = trail[head]
            head += 1
            self.propagations += 1
            falsified = -lit
            watch_list = watches.get(falsified, [])
            new_list: List[int] = []
            i = 0
            conflict = None
            while i < len(watch_list):
                idx = watch_list[i]
                i += 1
                clause = clauses[idx]
                # Ensure clause[1] is the falsified watcher.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                # Inlined literal valuation (hot loop).
                v = assign[first] if first > 0 else assign[-first]
                first_value = v if (first > 0 or v is None) else not v
                if first_value is True:
                    new_list.append(idx)
                    continue
                # Search replacement watch.
                found = False
                for j in range(2, len(clause)):
                    other = clause[j]
                    v = assign[other] if other > 0 else assign[-other]
                    value = v if (other > 0 or v is None) else not v
                    if value is not False:
                        clause[1], clause[j] = clause[j], clause[1]
                        watches.setdefault(other, []).append(idx)
                        found = True
                        break
                if found:
                    continue
                new_list.append(idx)
                if first_value is False:
                    # Conflict: restore remaining watches and report.
                    new_list.extend(watch_list[i:])
                    conflict = idx
                    break
                self._enqueue(first, idx)
            watches[falsified] = new_list
            if conflict is not None:
                self._qhead = len(trail)
                return conflict
        self._qhead = head
        return None

    # -- conflict analysis --------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self.activity[v] *= 1e-100
            self.var_inc *= 1e-100
            self._order_heap = [
                (-self.activity[v], v)
                for v in range(1, self.num_vars + 1)
                if self.assign[v] is None
            ]
            heapq.heapify(self._order_heap)
        else:
            heapq.heappush(self._order_heap, (-self.activity[var], var))

    def _analyze(self, conflict_idx: int) -> Tuple[List[int], int]:
        """First-UIP learning; returns (learnt clause, backjump level)."""
        learnt: List[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        idx: Optional[int] = conflict_idx
        trail_pos = len(self.trail) - 1
        current_level = len(self.trail_lim)
        while True:
            assert idx is not None
            for q in self.clauses[idx]:
                # When expanding the reason of an implied literal p, iterate
                # over clause \ {p} (lit holds -p at this point).
                if lit is not None and q == -lit:
                    continue
                var = abs(q)
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal from trail
            while not seen[abs(self.trail[trail_pos])]:
                trail_pos -= 1
            lit = -self.trail[trail_pos]
            var = abs(lit)
            seen[var] = False
            trail_pos -= 1
            counter -= 1
            if counter == 0:
                learnt[0] = lit
                break
            idx = self.reason[var]
        # Minimise: drop literals implied by the rest (reason subsumption).
        marked = set(abs(l) for l in learnt)
        minimised = [learnt[0]]
        for q in learnt[1:]:
            reason_idx = self.reason[abs(q)]
            if reason_idx is None:
                minimised.append(q)
                continue
            if all(
                abs(r) in marked or self.level[abs(r)] == 0
                for r in self.clauses[reason_idx]
                if r != -q
            ):
                continue
            minimised.append(q)
        learnt = minimised
        if len(learnt) == 1:
            return learnt, 0
        backjump = max(self.level[abs(q)] for q in learnt[1:])
        return learnt, backjump

    def _backtrack(self, target_level: int) -> None:
        while len(self.trail_lim) > target_level:
            mark = self.trail_lim.pop()
            while len(self.trail) > mark:
                lit = self.trail.pop()
                var = abs(lit)
                self.polarity[var] = self.assign[var] or False
                self.assign[var] = None
                self.reason[var] = None
                heapq.heappush(self._order_heap, (-self.activity[var], var))
        self._qhead = min(getattr(self, "_qhead", 0), len(self.trail))

    def _decide(self) -> Optional[int]:
        heap = self._order_heap
        while heap:
            neg_act, var = heapq.heappop(heap)
            if self.assign[var] is not None:
                continue
            if -neg_act < self.activity[var]:
                # Stale entry: a fresher one with higher priority exists.
                heapq.heappush(heap, (-self.activity[var], var))
                continue
            return var if self.polarity[var] else -var
        # Heap exhausted: fall back to a linear scan (assignment complete
        # in the common case).
        for var in range(1, self.num_vars + 1):
            if self.assign[var] is None:
                return var if self.polarity[var] else -var
        return None

    # -- driver ----------------------------------------------------------------------

    def solve(
        self, max_conflicts: Optional[int] = None, assumptions: Sequence[int] = ()
    ) -> SatResult:
        if self.trivially_unsat:
            return SatResult("unsat")
        self._qhead = 0
        # Top-level units.
        for idx, clause in enumerate(self.clauses):
            if len(clause) == 1:
                if not self._enqueue(clause[0], idx):
                    return SatResult("unsat")
        for lit in assumptions:
            if not self._enqueue(lit, None):
                return SatResult("unsat")
        if self._propagate() is not None:
            return SatResult("unsat")
        restart_count = 0
        conflicts_until_restart = 32 * _luby(1)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if not self.trail_lim:
                    return SatResult(
                        "unsat",
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                    )
                if max_conflicts is not None and self.conflicts >= max_conflicts:
                    return SatResult(
                        "unknown",
                        conflicts=self.conflicts,
                        decisions=self.decisions,
                        propagations=self.propagations,
                    )
                learnt, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                idx = len(self.clauses)
                self.clauses.append(learnt)
                self._watch_clause(idx)
                self._enqueue(learnt[0], idx if len(learnt) > 1 else None)
                self.var_inc /= self.var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_count += 1
                    conflicts_until_restart = 32 * _luby(restart_count + 1)
                    self._backtrack(0)
                continue
            decision = self._decide()
            if decision is None:
                model = {
                    v: bool(self.assign[v]) for v in range(1, self.num_vars + 1)
                }
                return SatResult(
                    "sat",
                    model=model,
                    conflicts=self.conflicts,
                    decisions=self.decisions,
                    propagations=self.propagations,
                )
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(decision, None)


def solve(
    cnf: CNF,
    max_conflicts: Optional[int] = None,
    assumptions: Sequence[int] = (),
) -> SatResult:
    """One-shot convenience wrapper around :class:`SatSolver`."""
    return SatSolver(cnf).solve(max_conflicts=max_conflicts, assumptions=assumptions)
