"""Tseitin encoding: gate-level circuits to equisatisfiable CNF.

Each net gets a CNF variable; each gate contributes the clauses asserting
``output <-> gate(inputs)``. n-ary associative gates are encoded directly
(AND/OR get ``n+1`` clauses, XOR chains through fresh intermediates to avoid
the exponential direct encoding).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..circuits import Circuit, GateType
from .cnf import CNF

__all__ = ["tseitin_encode", "CircuitEncoding"]


class CircuitEncoding:
    """CNF plus the net-to-variable map for one or more encoded circuits."""

    def __init__(self) -> None:
        self.cnf = CNF()
        self.var_of: Dict[str, int] = {}

    def variable(self, net: str) -> int:
        if net not in self.var_of:
            self.var_of[net] = self.cnf.new_var()
        return self.var_of[net]

    def assignment_of(self, model: Dict[int, bool]) -> Dict[str, bool]:
        return {net: model.get(var, False) for net, var in self.var_of.items()}


def _encode_and(cnf: CNF, out: int, ins: List[int]) -> None:
    for i in ins:
        cnf.add_clause((-out, i))
    cnf.add_clause([out] + [-i for i in ins])


def _encode_or(cnf: CNF, out: int, ins: List[int]) -> None:
    for i in ins:
        cnf.add_clause((out, -i))
    cnf.add_clause([-out] + ins)


def _encode_xor2(cnf: CNF, out: int, a: int, b: int) -> None:
    cnf.add_clause((-out, a, b))
    cnf.add_clause((-out, -a, -b))
    cnf.add_clause((out, -a, b))
    cnf.add_clause((out, a, -b))


def _encode_xor(cnf: CNF, out: int, ins: List[int]) -> None:
    acc = ins[0]
    for nxt in ins[1:-1]:
        fresh = cnf.new_var()
        _encode_xor2(cnf, fresh, acc, nxt)
        acc = fresh
    _encode_xor2(cnf, out, acc, ins[-1])


def _encode_eq(cnf: CNF, out: int, src: int, invert: bool) -> None:
    if invert:
        cnf.add_clause((-out, -src))
        cnf.add_clause((out, src))
    else:
        cnf.add_clause((-out, src))
        cnf.add_clause((out, -src))


def tseitin_encode(
    circuit: Circuit, encoding: CircuitEncoding = None, prefix: str = ""
) -> CircuitEncoding:
    """Encode ``circuit`` into CNF; nets are keyed as ``prefix + net``.

    Passing an existing ``encoding`` composes several circuits over shared
    variables (the miter construction maps both circuits' primary inputs to
    the same keys).
    """
    enc = encoding if encoding is not None else CircuitEncoding()
    cnf = enc.cnf
    for net in circuit.inputs:
        enc.variable(prefix + net)
    for gate in circuit.topological_order():
        out = enc.variable(prefix + gate.output)
        ins = [enc.variable(prefix + n) for n in gate.inputs]
        gate_type = gate.gate_type
        if gate_type is GateType.AND:
            _encode_and(cnf, out, ins)
        elif gate_type is GateType.OR:
            _encode_or(cnf, out, ins)
        elif gate_type is GateType.XOR:
            _encode_xor(cnf, out, ins)
        elif gate_type in (GateType.NAND, GateType.NOR, GateType.XNOR):
            inner = cnf.new_var()
            if gate_type is GateType.NAND:
                _encode_and(cnf, inner, ins)
            elif gate_type is GateType.NOR:
                _encode_or(cnf, inner, ins)
            else:
                _encode_xor(cnf, inner, ins)
            _encode_eq(cnf, out, inner, invert=True)
        elif gate_type is GateType.NOT:
            _encode_eq(cnf, out, ins[0], invert=True)
        elif gate_type is GateType.BUF:
            _encode_eq(cnf, out, ins[0], invert=False)
        elif gate_type is GateType.CONST0:
            cnf.add_clause((-out,))
        elif gate_type is GateType.CONST1:
            cnf.add_clause((out,))
        else:
            raise ValueError(f"unknown gate type {gate_type!r}")
    return enc
