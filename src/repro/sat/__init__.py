"""SAT substrate: CNF, Tseitin encoding, CDCL solver."""

from .cnf import CNF
from .solver import SatResult, SatSolver, solve
from .tseitin import CircuitEncoding, tseitin_encode

__all__ = [
    "CNF",
    "SatSolver",
    "SatResult",
    "solve",
    "tseitin_encode",
    "CircuitEncoding",
]
