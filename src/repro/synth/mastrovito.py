"""Mastrovito multiplier generator: the paper's golden-model (Spec) circuit.

A Mastrovito multiplier [Mastrovito, 1988] computes ``Z = A * B mod P(x)``
in two stages:

1. an array multiplier forms the polynomial product
   ``S = A * B`` over F2, with ``s_t = XOR_{i+j=t} (a_i AND b_j)`` for
   ``t = 0 .. 2k-2``;
2. a reduction network folds the high coefficients ``s_k .. s_{2k-2}`` back
   into the low ``k`` positions using the precomputed residues
   ``alpha^t mod P(x)``.

The result is a flat netlist of ``k^2`` AND gates and O(k^2) XOR gates with
input words ``A``, ``B`` and output word ``Z`` — the flattened Spec of the
paper's Table 1 experiments.
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..gf import GF2m, poly2

__all__ = ["mastrovito_multiplier", "reduction_matrix"]


def reduction_matrix(field: GF2m) -> List[int]:
    """Residues ``alpha^t mod P(x)`` for ``t = 0 .. 2k-2``.

    Row ``t`` is a ``k``-bit mask: bit ``j`` set means ``s_t`` contributes to
    output coefficient ``z_j`` after reduction.
    """
    rows = []
    residue = 1
    for _ in range(2 * field.k - 1):
        rows.append(residue)
        residue = field.mul(residue, field.alpha)
    return rows


def mastrovito_multiplier(
    field: GF2m, name: str = "", tree: bool = True
) -> Circuit:
    """Build a gate-level Mastrovito multiplier for ``field``.

    ``tree=True`` accumulates partial products with balanced XOR trees
    (shallow, synthesis-like); ``tree=False`` chains them linearly, matching
    the classic array-multiplier structure. Both compute the same function.
    """
    k = field.k
    circuit = Circuit(name or f"mastrovito_{k}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    b_bits = circuit.add_inputs(f"b{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)
    circuit.add_input_word("B", b_bits)

    # Stage 1: partial products and the polynomial product S.
    s_nets: List[str] = []
    for t in range(2 * k - 1):
        partials = []
        for i in range(max(0, t - k + 1), min(t, k - 1) + 1):
            partials.append(circuit.AND(a_bits[i], b_bits[t - i], out=f"pp_{i}_{t - i}"))
        if len(partials) == 1:
            s_nets.append(partials[0])
        elif tree:
            s_nets.append(circuit.xor_tree(partials, out=f"s{t}"))
        else:
            acc = partials[0]
            for p in partials[1:]:
                acc = circuit.XOR(acc, p)
            s_nets.append(circuit.BUF(acc, out=f"s{t}"))

    # Stage 2: reduction network z_j = s_j XOR (high s_t with alpha^t bit j).
    rows = reduction_matrix(field)
    z_bits = []
    for j in range(k):
        terms = [s_nets[j]] if j < len(s_nets) else []
        for t in range(k, 2 * k - 1):
            if (rows[t] >> j) & 1:
                terms.append(s_nets[t])
        if len(terms) == 1:
            z_bits.append(circuit.BUF(terms[0], out=f"z{j}"))
        else:
            z_bits.append(circuit.xor_tree(terms, out=f"z{j}"))

    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit
