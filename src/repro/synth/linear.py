"""Linear (XOR-network) datapaths: adders, squarers, constant multipliers.

Addition in F_{2^k} is bitwise XOR; squaring and multiplication by a
constant are F2-linear maps, so each output bit is an XOR of a subset of
input bits. These generators emit the corresponding XOR networks — small
circuits that exercise the abstraction engine on functions other than
``A * B`` (``A + B``, ``A^2``, ``c * A``) and provide building blocks for
composed datapaths.
"""

from __future__ import annotations

from typing import List

from ..circuits import Circuit
from ..gf import GF2m

__all__ = [
    "gf_adder",
    "gf_squarer",
    "constant_adder",
    "constant_multiplier",
    "linear_map_circuit",
]


def gf_adder(field: GF2m, name: str = "") -> Circuit:
    """``Z = A + B`` over F_{2^k}: one XOR per bit."""
    k = field.k
    circuit = Circuit(name or f"gfadd_{k}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    b_bits = circuit.add_inputs(f"b{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)
    circuit.add_input_word("B", b_bits)
    z_bits = [circuit.XOR(a_bits[i], b_bits[i], out=f"z{i}") for i in range(k)]
    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit


def linear_map_circuit(
    field: GF2m, columns: List[int], name: str, input_word: str = "A"
) -> Circuit:
    """XOR network for the F2-linear map sending basis vector i to columns[i].

    ``columns[i]`` is the image of ``alpha^i`` as a ``k``-bit residue; output
    bit ``j`` is the XOR of input bits ``i`` with bit ``j`` of
    ``columns[i]`` set.
    """
    k = field.k
    if len(columns) != k:
        raise ValueError(f"expected {k} columns, got {len(columns)}")
    circuit = Circuit(name)
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    circuit.add_input_word(input_word, a_bits)
    z_bits = []
    for j in range(k):
        terms = [a_bits[i] for i in range(k) if (columns[i] >> j) & 1]
        if not terms:
            z_bits.append(circuit.CONST(0, out=f"z{j}"))
        elif len(terms) == 1:
            z_bits.append(circuit.BUF(terms[0], out=f"z{j}"))
        else:
            z_bits.append(circuit.xor_tree(terms, out=f"z{j}"))
    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit


def constant_adder(field: GF2m, constant: int, name: str = "") -> Circuit:
    """``Z = A + c``: inverters on the bit positions set in ``c``."""
    k = field.k
    field._check(constant)
    circuit = Circuit(name or f"gfaddconst_{k}_{constant:x}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)
    z_bits = []
    for i in range(k):
        if (constant >> i) & 1:
            z_bits.append(circuit.NOT(a_bits[i], out=f"z{i}"))
        else:
            z_bits.append(circuit.BUF(a_bits[i], out=f"z{i}"))
    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit


def gf_squarer(field: GF2m, name: str = "") -> Circuit:
    """``Z = A^2`` over F_{2^k}: the Frobenius map as an XOR network."""
    columns = [field.pow(field.alpha, 2 * i) for i in range(field.k)]
    return linear_map_circuit(field, columns, name or f"gfsquare_{field.k}")


def constant_multiplier(field: GF2m, constant: int, name: str = "") -> Circuit:
    """``Z = c * A`` over F_{2^k} for a fixed residue ``c``."""
    columns = [
        field.mul(constant, field.pow(field.alpha, i)) for i in range(field.k)
    ]
    return linear_map_circuit(
        field, columns, name or f"gfconstmul_{field.k}_{constant:x}"
    )
