"""Karatsuba multiplier generator: a third, recursively structured Impl.

Karatsuba's trick over F2[x] splits each operand at ``m = ceil(n/2)``::

    A = A_l + x^m A_h,   B = B_l + x^m B_h
    L = A_l B_l,  H = A_h B_h,  M = (A_l + A_h)(B_l + B_h)
    A*B = L + x^m (M + L + H) + x^{2m} H

yielding three half-size multiplications instead of four. The gate-level
result is structurally very different from both the Mastrovito array and
the unrolled Montgomery datapath — a third architecture for equivalence
experiments. The polynomial product is reduced modulo ``P(x)`` with the
same network as the Mastrovito generator.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuits import Circuit
from ..gf import GF2m
from .mastrovito import reduction_matrix

__all__ = ["karatsuba_multiplier", "karatsuba_product"]

Net = Optional[str]  # None encodes a structural zero


def _xor(circuit: Circuit, a: Net, b: Net) -> Net:
    if a is None:
        return b
    if b is None:
        return a
    return circuit.XOR(a, b)


def _add_vectors(circuit: Circuit, a: List[Net], b: List[Net]) -> List[Net]:
    width = max(len(a), len(b))
    padded_a = a + [None] * (width - len(a))
    padded_b = b + [None] * (width - len(b))
    return [_xor(circuit, x, y) for x, y in zip(padded_a, padded_b)]


def _schoolbook(circuit: Circuit, a: List[Net], b: List[Net]) -> List[Net]:
    result: List[Net] = [None] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        for j, bj in enumerate(b):
            if ai is None or bj is None:
                continue
            result[i + j] = _xor(circuit, result[i + j], circuit.AND(ai, bj))
    return result


def karatsuba_product(
    circuit: Circuit, a: List[Net], b: List[Net], threshold: int = 4
) -> List[Net]:
    """Nets of the polynomial product ``A * B`` over F2 (degree < |a|+|b|-1).

    Recursion bottoms out at ``threshold`` bits with schoolbook partial
    products; ``None`` entries are structural zeros (no gate emitted).
    """
    n = max(len(a), len(b))
    if n <= threshold:
        return _schoolbook(circuit, a, b)
    m = (n + 1) // 2
    a_lo, a_hi = a[:m], a[m:]
    b_lo, b_hi = b[:m], b[m:]
    low = karatsuba_product(circuit, a_lo, b_lo, threshold)
    high = (
        karatsuba_product(circuit, a_hi, b_hi, threshold) if a_hi and b_hi else []
    )
    middle = karatsuba_product(
        circuit,
        _add_vectors(circuit, a_lo, a_hi),
        _add_vectors(circuit, b_lo, b_hi),
        threshold,
    )
    # cross = M + L + H, shifted by m; high shifted by 2m.
    cross = _add_vectors(circuit, _add_vectors(circuit, middle, low), high)
    width = len(a) + len(b) - 1
    result: List[Net] = [None] * width
    for i, net in enumerate(low):
        result[i] = _xor(circuit, result[i], net)
    for i, net in enumerate(cross):
        if m + i < width:
            result[m + i] = _xor(circuit, result[m + i], net)
    for i, net in enumerate(high):
        result[2 * m + i] = _xor(circuit, result[2 * m + i], net)
    return result


def karatsuba_multiplier(
    field: GF2m, name: str = "", threshold: int = 4
) -> Circuit:
    """Gate-level Karatsuba multiplier ``Z = A * B mod P(x)``."""
    k = field.k
    circuit = Circuit(name or f"karatsuba_{k}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    b_bits = circuit.add_inputs(f"b{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)
    circuit.add_input_word("B", b_bits)

    product = karatsuba_product(circuit, list(a_bits), list(b_bits), threshold)
    rows = reduction_matrix(field)
    z_bits = []
    for j in range(k):
        terms = []
        if j < len(product) and product[j] is not None:
            terms.append(product[j])
        for t in range(k, 2 * k - 1):
            if t < len(product) and product[t] is not None and (rows[t] >> j) & 1:
                terms.append(product[t])
        if not terms:
            z_bits.append(circuit.CONST(0, out=f"z{j}"))
        elif len(terms) == 1:
            z_bits.append(circuit.BUF(terms[0], out=f"z{j}"))
        else:
            z_bits.append(circuit.xor_tree(terms, out=f"z{j}"))
    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit
