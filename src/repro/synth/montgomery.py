"""Montgomery multiplier generators: the paper's Impl circuits (Fig. 1).

Montgomery reduction over F_{2^k} [Koc & Acar 1998; Wu 2002] computes
``MontMul(A, B) = A * B * R^{-1} mod P(x)`` with ``R = alpha^k``. The
gate-level block here is the classic bit-serial architecture unrolled into
combinational logic: ``k`` stages, each accumulating one partial product and
dividing by ``alpha`` after a conditional add of ``P``::

    C := 0
    for i = 0 .. k-1:
        C := C + a_i * B           # k AND gates + XORs
        C := C + c_0 * P(x)        # clears bit 0 (P is the field polynomial)
        C := C / alpha             # wiring shift

Since MontMul cannot produce ``A*B`` directly, the full multiplier is the
four-block hierarchy of the paper's Fig. 1::

    AR  = MontMul(A, R^2)      # BLK A     (constant-propagated)
    BR  = MontMul(B, R^2)      # BLK B     (constant-propagated)
    ABR = MontMul(AR, BR)      # BLK Mid
    G   = MontMul(ABR, 1)      # BLK Out   (constant-propagated)

so ``G = A * B mod P``. Each block is a flattened netlist; the blocks are
structurally very dissimilar from a Mastrovito multiplier, which is what
defeats structural equivalence checkers.
"""

from __future__ import annotations

from ..circuits import Circuit, HierarchicalCircuit
from ..circuits.opt import bind_word_constant, simplify
from ..gf import GF2m

__all__ = [
    "montgomery_block",
    "montgomery_constant_block",
    "montgomery_multiplier",
    "montgomery_squarer",
    "montgomery_r",
    "montgomery_r2",
]


def montgomery_r(field: GF2m) -> int:
    """The Montgomery radix ``R = alpha^k mod P``."""
    return field.pow(field.alpha, field.k)


def montgomery_r2(field: GF2m) -> int:
    """``R^2 mod P``, the constant fed to the input blocks of Fig. 1."""
    return field.pow(field.alpha, 2 * field.k)


def montgomery_block(field: GF2m, name: str = "") -> Circuit:
    """Gate-level Montgomery multiplication block ``G = A * B * R^{-1}``."""
    k = field.k
    p = field.modulus
    circuit = Circuit(name or f"montmul_{k}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    b_bits = circuit.add_inputs(f"b{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)
    circuit.add_input_word("B", b_bits)

    # c[j] is the net holding coefficient j of the running accumulator;
    # None encodes a structural zero (stage 0 starts from C = 0).
    c = [None] * k
    for i in range(k):
        # C := C + a_i * B
        t = []
        for j in range(k):
            pp = circuit.AND(a_bits[i], b_bits[j], out=f"pp_{i}_{j}")
            t.append(pp if c[j] is None else circuit.XOR(c[j], pp, out=f"t_{i}_{j}"))
        # C := C + c_0 * P(x); P is monic of degree k so a virtual
        # coefficient t_0 appears at position k, then C := C / alpha.
        c0 = t[0]
        new_c = [None] * k
        for j in range(1, k):
            if (p >> j) & 1:
                new_c[j - 1] = circuit.XOR(t[j], c0, out=f"u_{i}_{j}")
            else:
                new_c[j - 1] = t[j]
        new_c[k - 1] = c0  # bit k of P is always 1
        c = new_c

    z_bits = [circuit.BUF(c[j], out=f"g{j}") for j in range(k)]
    circuit.set_outputs(z_bits)
    circuit.add_output_word("G", z_bits)
    return circuit


def montgomery_constant_block(field: GF2m, constant: int, name: str = "") -> Circuit:
    """Montgomery block with operand ``B`` tied to a constant and simplified.

    This is how the paper's BLK A/B (constant ``R^2``) and BLK Out
    (constant ``1``) are produced: the generic block plus constant
    propagation, so the surviving structure mirrors a hand-specialised
    design. The result has the single input word ``A``.
    """
    block = montgomery_block(field, name=name or f"montmul_{field.k}_const")
    return simplify(bind_word_constant(block, "B", constant))


def montgomery_squarer(field: GF2m, name: str = "") -> Circuit:
    """Montgomery squarer ``G = A^2 * R^{-1} mod P`` (Wu [2], Fig.-free form).

    Squaring over F2 is coefficient spreading — ``s_{2i} = a_i`` with zero
    odd positions — so the datapath is a pure Montgomery reduction of the
    spread vector: ``k`` stages of ``T := (T + t_0 * P) / alpha`` applied to
    a ``2k-1``-bit value. No AND gates at all, in contrast to the
    multiplier block's ``k^2``.
    """
    k = field.k
    p = field.modulus
    circuit = Circuit(name or f"montsq_{k}")
    a_bits = circuit.add_inputs(f"a{i}" for i in range(k))
    circuit.add_input_word("A", a_bits)

    # t[j] holds coefficient j of the running value; None = structural zero.
    t = [None] * (2 * k - 1)
    for i in range(k):
        t[2 * i] = a_bits[i]
    for stage in range(k):
        t0 = t[0]
        width = len(t)
        # After T := (T + t0*P) / alpha the value spans max(width-1, k)
        # coefficients (P is monic of degree k).
        new_t = [None] * max(width - 1, k)
        for j in range(1, width):
            bit = t[j]
            if t0 is not None and (p >> j) & 1:
                bit = t0 if bit is None else circuit.XOR(bit, t0, out=f"u_{stage}_{j}")
            new_t[j - 1] = bit
        if t0 is not None:
            # Positions of P at or beyond the current width have no
            # coefficient in T yet; adding t0*P creates them (at least the
            # monic bit k whenever the value has shrunk to k coefficients).
            for j in range(width, k + 1):
                if (p >> j) & 1:
                    existing = new_t[j - 1]
                    new_t[j - 1] = (
                        t0
                        if existing is None
                        else circuit.XOR(existing, t0, out=f"v_{stage}_{j}")
                    )
        t = new_t
    z_bits = []
    for j in range(k):
        if t[j] is None:
            z_bits.append(circuit.CONST(0, out=f"g{j}"))
        else:
            z_bits.append(circuit.BUF(t[j], out=f"g{j}"))
    circuit.set_outputs(z_bits)
    circuit.add_output_word("G", z_bits)
    return circuit


def montgomery_multiplier(field: GF2m, name: str = "") -> HierarchicalCircuit:
    """The hierarchical Montgomery multiplier of Fig. 1: ``G = A * B mod P``."""
    k = field.k
    r2 = montgomery_r2(field)
    hierarchy = HierarchicalCircuit(name or f"montgomery_{k}", k)
    hierarchy.add_input_word("A")
    hierarchy.add_input_word("B")
    blk_in_a = montgomery_constant_block(field, r2, name=f"blk_a_{k}")
    blk_in_b = montgomery_constant_block(field, r2, name=f"blk_b_{k}")
    blk_mid = montgomery_block(field, name=f"blk_mid_{k}")
    blk_out = montgomery_constant_block(field, 1, name=f"blk_out_{k}")
    hierarchy.add_block("BLK_A", blk_in_a, {"A": "A"}, {"G": "AR"})
    hierarchy.add_block("BLK_B", blk_in_b, {"A": "B"}, {"G": "BR"})
    hierarchy.add_block("BLK_Mid", blk_mid, {"A": "AR", "B": "BR"}, {"G": "ABR"})
    hierarchy.add_block("BLK_Out", blk_out, {"A": "ABR"}, {"G": "G"})
    hierarchy.set_output_words(["G"])
    return hierarchy
