"""Itoh-Tsujii inversion datapath: a deep hierarchical verification target.

Fermat's little theorem gives ``A^{-1} = A^{2^k - 2}`` over ``F_{2^k}``.
The Itoh-Tsujii algorithm (ITA) evaluates this with an addition chain on
``beta_t = A^{2^t - 1}``::

    beta_1 = A
    beta_{2t}  = (beta_t)^{2^t} * beta_t
    beta_{t+1} = (beta_t)^2    * A
    A^{-1}     = (beta_{k-1})^2

following the binary expansion of ``k - 1``: O(log k) multiplications and
Frobenius-power blocks. Each ``X^{2^e}`` block is F2-linear (an XOR
network); multiplications are Mastrovito blocks. The resulting hierarchy
is much deeper than the paper's Fig. 1 — a stress test for word-level
composition, whose canonical result must be the single monomial
``A^{q-2}``.
"""

from __future__ import annotations

from ..circuits import Circuit, HierarchicalCircuit
from ..gf import GF2m
from .linear import linear_map_circuit
from .mastrovito import mastrovito_multiplier

__all__ = ["frobenius_power_circuit", "itoh_tsujii_inverter"]


def frobenius_power_circuit(field: GF2m, e: int, name: str = "") -> Circuit:
    """XOR network for ``Z = A^(2^e)`` (the e-fold Frobenius map)."""
    if e < 0:
        raise ValueError("Frobenius power must be non-negative")
    columns = [
        field.pow(field.alpha, i << e) if i else 1 for i in range(field.k)
    ]
    # alpha^0 = 1 maps to 1 regardless of e; higher basis vectors map to
    # alpha^(i * 2^e) reduced in the field.
    return linear_map_circuit(field, columns, name or f"frob{e}_{field.k}")


def itoh_tsujii_inverter(field: GF2m, name: str = "") -> HierarchicalCircuit:
    """Hierarchical inverter ``Z = A^{2^k - 2}`` (``0 -> 0``)."""
    k = field.k
    if k < 2:
        raise ValueError("inversion datapath needs k >= 2")
    hierarchy = HierarchicalCircuit(name or f"itoh_tsujii_{k}", k)
    hierarchy.add_input_word("A")

    fresh = {"n": 0}

    def next_word() -> str:
        fresh["n"] += 1
        return f"t{fresh['n']}"

    def frob_block(src: str, e: int) -> str:
        out = next_word()
        block = frobenius_power_circuit(field, e, name=f"frob{e}_{k}_{out}")
        hierarchy.add_block(f"F{out}", block, {"A": src}, {"Z": out})
        return out

    def mul_block(lhs: str, rhs: str) -> str:
        out = next_word()
        block = mastrovito_multiplier(field, name=f"mul_{k}_{out}")
        hierarchy.add_block(f"M{out}", block, {"A": lhs, "B": rhs}, {"Z": out})
        return out

    # Addition chain on t with beta_t = A^(2^t - 1), driven by the binary
    # expansion of k - 1 (MSB first).
    exponent_bits = bin(k - 1)[2:]
    beta = "A"  # beta_1
    t = 1
    for bit in exponent_bits[1:]:
        beta = mul_block(frob_block(beta, t), beta)  # beta_{2t}
        t *= 2
        if bit == "1":
            beta = mul_block(frob_block(beta, 1), "A")  # beta_{t+1}
            t += 1
    assert t == k - 1
    inverse = frob_block(beta, 1)  # (beta_{k-1})^2 = A^(2^k - 2)
    hierarchy.set_output_words([inverse])
    return hierarchy
