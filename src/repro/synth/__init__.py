"""Circuit generators: the paper's Spec/Impl benchmarks and test workloads."""

from .ecc import point_double_datapath, point_double_reference, point_double_spec
from .inversion import frobenius_power_circuit, itoh_tsujii_inverter
from .karatsuba import karatsuba_multiplier, karatsuba_product
from .linear import (
    constant_adder,
    constant_multiplier,
    gf_adder,
    gf_squarer,
    linear_map_circuit,
)
from .mastrovito import mastrovito_multiplier, reduction_matrix
from .montgomery import (
    montgomery_block,
    montgomery_squarer,
    montgomery_constant_block,
    montgomery_multiplier,
    montgomery_r,
    montgomery_r2,
)
from .random_logic import random_netlist, random_word_function, synthesize_word_function

__all__ = [
    "mastrovito_multiplier",
    "reduction_matrix",
    "karatsuba_multiplier",
    "karatsuba_product",
    "frobenius_power_circuit",
    "itoh_tsujii_inverter",
    "point_double_datapath",
    "point_double_spec",
    "point_double_reference",
    "constant_adder",
    "montgomery_block",
    "montgomery_constant_block",
    "montgomery_multiplier",
    "montgomery_squarer",
    "montgomery_r",
    "montgomery_r2",
    "gf_adder",
    "gf_squarer",
    "constant_multiplier",
    "linear_map_circuit",
    "synthesize_word_function",
    "random_word_function",
    "random_netlist",
]
