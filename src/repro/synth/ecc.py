"""ECC point-doubling datapath over a binary Weierstrass curve.

The paper's motivating application is elliptic-curve cryptography over
``F_{2^k}``. For the non-supersingular curve
``y^2 + xy = x^3 + a2 x^2 + a6`` the affine doubling of ``P = (X, Y)``
(``X != 0``) is::

    lambda = X + Y / X
    X3 = lambda^2 + lambda + a2
    Y3 = X^2 + (lambda + 1) * X3

This module assembles that formula as a *hierarchical gate-level datapath*:
an Itoh-Tsujii inverter for ``1/X``, Mastrovito multipliers, squarers and
XOR adders — ~a dozen blocks, several of them deep — plus the word-level
*specification polynomials* the datapath must implement. Verifying the two
against each other exercises composition with high-degree folding
(the inverter contributes ``X^{q-2}``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..algebra import Polynomial, PolynomialRing
from ..circuits import HierarchicalCircuit
from ..core import word_ring_for
from ..gf import GF2m
from .inversion import itoh_tsujii_inverter
from .linear import constant_adder, gf_adder, gf_squarer
from .mastrovito import mastrovito_multiplier

__all__ = ["point_double_datapath", "point_double_spec", "point_double_reference"]


def point_double_datapath(field: GF2m, a2: int = 1) -> HierarchicalCircuit:
    """Gate-level point doubling: words ``X, Y`` in, ``X3, Y3`` out."""
    k = field.k
    field._check(a2)
    hierarchy = HierarchicalCircuit(f"ecdbl_{k}", k)
    hierarchy.add_input_word("X")
    hierarchy.add_input_word("Y")

    def add_block(name, circuit, inputs, outputs):
        hierarchy.add_block(name, circuit, inputs, outputs)

    # The inverter is itself a hierarchy; hierarchies nest as trees, so its
    # blocks abstract individually and compose before joining this level.
    inverter = itoh_tsujii_inverter(field, name=f"inv_{k}")
    inv_word = inverter.output_words[0]
    add_block("INV", inverter, {"A": "X"}, {inv_word: "Xinv"})
    add_block(
        "MUL_YXINV",
        mastrovito_multiplier(field, name=f"mul_yxinv_{k}"),
        {"A": "Y", "B": "Xinv"},
        {"Z": "YdivX"},
    )
    add_block(
        "ADD_LAMBDA",
        gf_adder(field, name=f"add_lambda_{k}"),
        {"A": "X", "B": "YdivX"},
        {"Z": "Lambda"},
    )
    add_block(
        "SQ_LAMBDA",
        gf_squarer(field, name=f"sq_lambda_{k}"),
        {"A": "Lambda"},
        {"Z": "Lambda2"},
    )
    add_block(
        "ADD_L2L",
        gf_adder(field, name=f"add_l2l_{k}"),
        {"A": "Lambda2", "B": "Lambda"},
        {"Z": "Sum"},
    )
    add_block(
        "ADD_A2",
        constant_adder(field, a2, name=f"add_a2_{k}"),
        {"A": "Sum"},
        {"Z": "X3"},
    )
    add_block(
        "SQ_X",
        gf_squarer(field, name=f"sq_x_{k}"),
        {"A": "X"},
        {"Z": "X2"},
    )
    add_block(
        "ADD_L1",
        constant_adder(field, 1, name=f"add_l1_{k}"),
        {"A": "Lambda"},
        {"Z": "Lp1"},
    )
    add_block(
        "MUL_LX3",
        mastrovito_multiplier(field, name=f"mul_lx3_{k}"),
        {"A": "Lp1", "B": "X3"},
        {"Z": "LX3"},
    )
    add_block(
        "ADD_Y3",
        gf_adder(field, name=f"add_y3_{k}"),
        {"A": "X2", "B": "LX3"},
        {"Z": "Y3"},
    )
    hierarchy.set_output_words(["X3", "Y3"])
    return hierarchy


def point_double_spec(
    field: GF2m, a2: int = 1
) -> Tuple[PolynomialRing, Dict[str, Polynomial]]:
    """The affine doubling formulas as canonical word-level polynomials.

    Built symbolically in ``F_{2^k}[X, Y]`` with ``1/X`` replaced by the
    Fermat monomial ``X^{q-2}`` (they agree wherever ``X != 0``; at
    ``X = 0`` both spec and datapath degrade the same way since the
    datapath realises exactly this polynomial).
    """
    ring = word_ring_for(field, ["X", "Y"])
    x, y = ring.var("X"), ring.var("Y")
    lam = x + y * ring.var("X", field.order - 2)
    x3 = lam * lam + lam + ring.constant(a2)
    y3 = x * x + (lam + 1) * x3
    return ring, {"X3": x3, "Y3": y3}


def point_double_reference(field: GF2m, x: int, y: int, a2: int = 1) -> Tuple[int, int]:
    """Numeric affine doubling (``X != 0``) for cross-checking."""
    if x == 0:
        raise ZeroDivisionError("doubling with X = 0 yields the point at infinity")
    lam = x ^ field.div(y, x)
    x3 = field.square(lam) ^ lam ^ a2
    y3 = field.square(x) ^ field.mul(lam ^ 1, x3)
    return x3, y3
