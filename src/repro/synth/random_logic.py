"""Truth-table synthesis and random word functions (test workloads).

Any function ``f : F_{2^k}^n -> F_{2^k}`` is realisable as two-level logic;
:func:`synthesize_word_function` builds the XOR-of-minterms netlist for an
arbitrary table. Together with :func:`random_word_function` this gives the
test suite a supply of circuits whose canonical polynomials are *not* nice
arithmetic identities, exercising the abstraction engine (and its Case-2
path) far from the multiplier benchmarks.
"""

from __future__ import annotations

import random
from itertools import product as cartesian_product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..circuits import Circuit
from ..gf import GF2m

__all__ = ["synthesize_word_function", "random_word_function", "random_netlist"]


def synthesize_word_function(
    field: GF2m,
    table: Dict[Tuple[int, ...], int],
    num_inputs: int,
    name: str = "tt",
) -> Circuit:
    """Two-level netlist for the word function given by ``table``.

    ``table`` maps every point of ``F_{2^k}^num_inputs`` to a residue.
    Each output bit is the XOR of its minterms (minterms are disjoint, so
    XOR equals OR); minterms are ANDs of input literals with NOT gates for
    complemented bits. Practical only for small ``k * num_inputs``.
    """
    k = field.k
    expected = 1 << (k * num_inputs)
    if len(table) != expected:
        raise ValueError(f"table has {len(table)} rows, expected {expected}")
    circuit = Circuit(f"{name}_{k}")
    words: List[List[str]] = []
    for w in range(num_inputs):
        bits = circuit.add_inputs(f"w{w}_{i}" for i in range(k))
        circuit.add_input_word(chr(ord("A") + w), bits)
        words.append(bits)
    flat_bits = [b for bits in words for b in bits]
    inverted = {b: circuit.NOT(b, out=f"n_{b}") for b in flat_bits}

    minterm_cache: Dict[Tuple[int, ...], str] = {}

    def minterm(point: Tuple[int, ...]) -> str:
        if point in minterm_cache:
            return minterm_cache[point]
        literals = []
        for w, value in enumerate(point):
            for i, bit in enumerate(words[w]):
                literals.append(bit if (value >> i) & 1 else inverted[bit])
        net = literals[0]
        for lit in literals[1:]:
            net = circuit.AND(net, lit)
        minterm_cache[point] = net
        return net

    z_bits = []
    for j in range(k):
        terms = [minterm(p) for p, out in sorted(table.items()) if (out >> j) & 1]
        if not terms:
            z_bits.append(circuit.CONST(0, out=f"z{j}"))
        else:
            z_bits.append(circuit.xor_tree(terms, out=f"z{j}"))
    circuit.set_outputs(z_bits)
    circuit.add_output_word("Z", z_bits)
    return circuit


def random_word_function(
    field: GF2m,
    num_inputs: int = 1,
    rng: Optional[random.Random] = None,
    name: str = "randfn",
    seed: Optional[int] = None,
) -> Tuple[Circuit, Dict[Tuple[int, ...], int]]:
    """A random function table over ``F_{2^k}^num_inputs`` and its netlist.

    ``rng`` (or the convenience ``seed``) pins the table for reproducible
    runs; the default remains nondeterministic.
    """
    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    k = field.k
    points = cartesian_product(range(field.order), repeat=num_inputs)
    table = {p: rng.randrange(field.order) for p in points}
    return synthesize_word_function(field, table, num_inputs, name=name), table


def random_netlist(
    num_inputs: int,
    num_gates: int,
    rng: Optional[random.Random] = None,
    name: str = "randnet",
    seed: Optional[int] = None,
) -> Circuit:
    """A random acyclic gate soup (structural tests, I/O round-trips).

    ``rng`` (or the convenience ``seed``) makes the topology reproducible;
    the default remains nondeterministic.
    """
    from ..circuits.gates import GateType

    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    circuit = Circuit(name)
    nets = circuit.add_inputs(f"i{j}" for j in range(num_inputs))
    binary = [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOR, GateType.XNOR]
    for _ in range(num_gates):
        gate_type = rng.choice(binary + [GateType.NOT])
        if gate_type is GateType.NOT:
            nets.append(circuit.NOT(rng.choice(nets)))
        else:
            nets.append(
                circuit.add_gate(
                    circuit.fresh_net("g"), gate_type, rng.sample(nets, 2)
                )
            )
    circuit.set_outputs(nets[-max(1, num_gates // 4):])
    return circuit
