"""HTTP client for the verification service: connection reuse + backoff.

:class:`ServiceClient` is the library behind ``repro submit`` and the
throughput benchmark. Stdlib only (:mod:`http.client`), one persistent
keep-alive connection per client instance (instances are not thread-safe
— give each thread its own), and retry with exponential backoff + jitter
for the failure modes a resident daemon actually exhibits:

- ``429`` (queue full) and ``503`` (draining/booting) honour the server's
  ``Retry-After`` hint when present, else back off exponentially;
- connection-level errors (daemon restarting, not up yet) reconnect and
  retry the same way;
- other HTTP errors surface immediately as :class:`ServiceError` — a
  ``400`` will not become a ``200`` by retrying.

Submission helpers take netlist *text* (the daemon may not share a
filesystem with the client); :meth:`ServiceClient.verify` is the
blocking convenience that submits and long-polls to a verdict.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Dict, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError", "ServiceUnavailable"]

DEFAULT_PORT = 8014


class ServiceError(Exception):
    """Terminal client error: the request was answered and refused."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(ServiceError):
    """Retries exhausted against 429/503/connection failures."""


class ServiceClient:
    """One keep-alive connection to a verification daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_base: float = 0.25,
        backoff_cap: float = 10.0,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._rng = rng if rng is not None else random.Random()
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _once(self, method: str, path: str, body: Optional[Dict]):
        """One request over the persistent connection; reconnects once if
        the server closed the idle socket under us."""
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                return response.status, response.getheader("Retry-After"), data
            except (http.client.HTTPException, ConnectionError, socket.error):
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _backoff(self, attempt: int, retry_after: Optional[str]) -> float:
        if retry_after:
            try:
                return min(float(retry_after), self.backoff_cap)
            except ValueError:
                pass
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        return delay * (0.5 + self._rng.random())  # full jitter

    def request(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        """Issue one API call with retry/backoff; returns the decoded JSON."""
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            try:
                status, retry_after, data = self._once(method, path, body)
            except (http.client.HTTPException, ConnectionError, socket.error) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt < self.retries:
                    time.sleep(self._backoff(attempt, None))
                continue
            if status in (429, 503):
                try:
                    last_error = json.loads(data).get("error", "busy")
                except (json.JSONDecodeError, AttributeError):
                    last_error = f"status {status}"
                if attempt < self.retries:
                    time.sleep(self._backoff(attempt, retry_after))
                continue
            try:
                doc = json.loads(data) if data else {}
            except json.JSONDecodeError:
                raise ServiceError(status, f"non-JSON response: {data[:200]!r}")
            if status >= 400:
                raise ServiceError(status, doc.get("error", "request failed"))
            return doc
        raise ServiceUnavailable(
            503, f"gave up after {self.retries + 1} attempts: {last_error}"
        )

    # -- API surface ---------------------------------------------------------

    def submit_verify(
        self,
        spec_text: str,
        impl_text: str,
        k: int,
        modulus: Optional[int] = None,
        case2: str = "linearized",
        priority: int = 5,
        timeout: Optional[float] = None,
        spec_name: Optional[str] = None,
        impl_name: Optional[str] = None,
    ) -> Dict:
        """Submit an equivalence check; returns the submission document
        (``{"id": ..., "status": ...}``, plus ``coalesced`` on dedup)."""
        body: Dict = {
            "k": k,
            "spec_text": spec_text,
            "impl_text": impl_text,
            "case2": case2,
            "priority": priority,
        }
        if modulus is not None:
            body["modulus"] = modulus
        if timeout is not None:
            body["timeout"] = timeout
        if spec_name is not None:
            body["spec"] = spec_name
        if impl_name is not None:
            body["impl"] = impl_name
        return self.request("POST", "/v1/verify", body)

    def submit_abstract(
        self,
        netlist_text: str,
        k: int,
        modulus: Optional[int] = None,
        case2: str = "linearized",
        output_word: Optional[str] = None,
        priority: int = 5,
        timeout: Optional[float] = None,
        netlist_name: Optional[str] = None,
    ) -> Dict:
        body: Dict = {
            "k": k,
            "netlist_text": netlist_text,
            "case2": case2,
            "priority": priority,
        }
        if modulus is not None:
            body["modulus"] = modulus
        if output_word is not None:
            body["output_word"] = output_word
        if timeout is not None:
            body["timeout"] = timeout
        if netlist_name is not None:
            body["netlist"] = netlist_name
        return self.request("POST", "/v1/abstract", body)

    def submit_reveng(
        self,
        netlist_text: str,
        mode: str = "poly",
        m: Optional[int] = None,
        k: Optional[int] = None,
        modulus: Optional[int] = None,
        spec_form: Optional[str] = None,
        all_candidates: bool = False,
        limit: Optional[int] = None,
        case2: str = "linearized",
        priority: int = 5,
        timeout: Optional[float] = None,
        netlist_name: Optional[str] = None,
    ) -> Dict:
        """Submit a reverse-engineering job.

        ``mode="poly"`` recovers the unknown field polynomial (optional
        degree ``m``, inferred from word widths server-side when omitted);
        ``mode="func"`` identifies the arithmetic function over a known
        field and requires ``k``.
        """
        body: Dict = {
            "mode": mode,
            "netlist_text": netlist_text,
            "case2": case2,
            "priority": priority,
        }
        if m is not None:
            body["m"] = m
        if k is not None:
            body["k"] = k
        if modulus is not None:
            body["modulus"] = modulus
        if spec_form is not None:
            body["spec_form"] = spec_form
        if all_candidates:
            body["all"] = True
        if limit is not None:
            body["limit"] = limit
        if timeout is not None:
            body["timeout"] = timeout
        if netlist_name is not None:
            body["netlist"] = netlist_name
        return self.request("POST", "/v1/reveng", body)

    def get_job(self, job_id: str, wait: Optional[float] = None) -> Dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def wait_for(self, job_id: str, timeout: float = 300.0) -> Dict:
        """Long-poll until the job is terminal; raises on client timeout."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still {self.get_job(job_id).get('status')!r} "
                    f"after {timeout:g}s"
                )
            doc = self.get_job(job_id, wait=min(remaining, 30.0))
            if doc.get("status") in ("done", "failed", "expired", "cancelled"):
                return doc

    def verify(
        self,
        spec_text: str,
        impl_text: str,
        k: int,
        poll_timeout: float = 300.0,
        **kwargs,
    ) -> Dict:
        """Submit + wait: the blocking one-call equivalence check."""
        submission = self.submit_verify(spec_text, impl_text, k, **kwargs)
        return self.wait_for(submission["id"], timeout=poll_timeout)

    def health(self) -> Dict:
        return self.request("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _, data = self._once("GET", "/metrics", None)
        if status != 200:
            raise ServiceError(status, "metrics scrape failed")
        return data.decode()

    @staticmethod
    def from_address(address: str, **kwargs) -> "ServiceClient":
        """Build a client from ``host:port`` (e.g. a ``--port-file`` line)."""
        host, _, port = address.strip().rpartition(":")
        return ServiceClient(host=host or "127.0.0.1", port=int(port), **kwargs)
