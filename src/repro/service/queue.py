"""Bounded priority queue with explicit backpressure and drain semantics.

The admission-control half of the verification service. Three properties
the stdlib ``queue.PriorityQueue`` does not give together:

- **bounded with *rejection*, not blocking** — an HTTP handler must answer
  ``429 Retry-After`` immediately when the daemon is saturated, so
  :meth:`BoundedJobQueue.put` raises :class:`QueueFull` instead of
  blocking the accept thread;
- **priority classes with FIFO fairness** — entries dispatch lowest
  priority number first and, within a class, strictly in arrival order
  (a monotonic sequence number breaks ties, so equal-priority work can
  never starve or reorder);
- **close-then-drain** — :meth:`close` stops admission while letting
  workers pull everything already accepted; once empty, getters see
  :class:`QueueClosed` and exit. :meth:`drain_remaining` force-empties
  the queue for deadline-bounded shutdown, returning the abandoned
  entries so the caller can mark them cancelled rather than lose them.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, List, Optional, Tuple

__all__ = ["BoundedJobQueue", "QueueClosed", "QueueFull"]


class QueueFull(Exception):
    """Admission rejected: the queue is at capacity (HTTP 429 territory)."""


class QueueClosed(Exception):
    """The queue no longer accepts work (drain in progress or finished)."""


class BoundedJobQueue:
    """Priority queue of job entries with a hard capacity."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._peak_depth = 0

    def put(self, item: Any, priority: int = 5) -> int:
        """Admit ``item``; returns the queue depth after insertion.

        Raises :class:`QueueFull` at capacity and :class:`QueueClosed`
        after :meth:`close` — both without blocking.
        """
        with self._lock:
            if self._closed:
                raise QueueClosed("queue is closed to new work")
            if len(self._heap) >= self.capacity:
                raise QueueFull(
                    f"queue at capacity ({self.capacity} entries)"
                )
            heapq.heappush(self._heap, (priority, next(self._seq), item))
            depth = len(self._heap)
            self._peak_depth = max(self._peak_depth, depth)
            self._not_empty.notify()
            return depth

    def get(self, timeout: Optional[float] = None) -> Any:
        """Pop the highest-priority entry, blocking up to ``timeout``.

        Returns None on timeout. Raises :class:`QueueClosed` once the
        queue is closed *and* empty — the worker-thread exit signal.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._not_empty:
            while not self._heap:
                if self._closed:
                    raise QueueClosed("queue drained")
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)
            return heapq.heappop(self._heap)[2]

    def close(self) -> None:
        """Stop admission; wake all waiting getters so they can drain/exit."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def drain_remaining(self) -> List[Any]:
        """Remove and return everything still queued (for cancellation)."""
        with self._lock:
            items = [entry[2] for entry in sorted(self._heap)]
            self._heap.clear()
            self._not_empty.notify_all()
            return items

    def items(self) -> list:
        """Snapshot of the queued items, in dispatch (priority) order.

        Read-only peek for cost estimation (the Retry-After hint sums a
        per-item runtime prediction); the queue itself is untouched.
        """
        with self._lock:
            return [entry[2] for entry in sorted(self._heap)]

    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
