"""In-process single-flight execution groups.

``SingleFlight.do(key, fn)`` guarantees that among concurrent callers
passing the same ``key``, exactly one (the *leader*) runs ``fn``; the rest
(*followers*) block until the leader finishes and then share its return
value — or its exception. Once no call for a key is in flight the next
caller leads again, so the group deduplicates only *concurrent* work;
cross-request memoization stays the cache's job.

This is the service's answer to the thundering-herd shape of verification
traffic: N clients submitting the same circuit pair within one abstraction
latency should cost one abstraction, not N. The disk cache's per-key
``flock`` already serializes *processes*; this group serializes *threads*
in the daemon without touching the filesystem, and works even when the
cache is disabled or degraded (no ``fcntl``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["SingleFlight"]


class _Call:
    """One in-flight computation: a latch plus its eventual outcome."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class SingleFlight:
    """Deduplicate concurrent calls by key (Go ``singleflight`` style).

    ``on_shared`` is invoked (with the key) every time a follower shares a
    leader's result — the service wires it to the
    ``service.singleflight_shared`` metric so dedup is visible in
    ``/metrics``.
    """

    def __init__(self, on_shared: Optional[Callable[[str], None]] = None):
        self._lock = threading.Lock()
        self._calls: Dict[str, _Call] = {}
        self._on_shared = on_shared

    def do(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``; returns ``(value, shared)``.

        ``shared`` is True when this caller waited on a peer's computation
        instead of running ``fn`` itself. If the leader raised, every
        follower re-raises the same exception; the key is forgotten either
        way, so a later retry computes afresh.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = _Call()
                self._calls[key] = call
                leader = True
            else:
                call.followers += 1
                leader = False

        if not leader:
            call.done.wait()
            if self._on_shared is not None:
                self._on_shared(key)
            if call.error is not None:
                raise call.error
            return call.value, True

        try:
            call.value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.done.set()
        return call.value, False

    def in_flight(self) -> int:
        """Number of keys currently being computed (for introspection)."""
        with self._lock:
            return len(self._calls)
