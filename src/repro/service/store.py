"""Job records and the in-memory job store of the verification service.

A :class:`JobRecord` is the unit the HTTP API reasons about: submitted via
``POST /v1/verify`` / ``POST /v1/abstract``, queued, executed, and then
polled at ``GET /v1/jobs/{id}``. The :class:`JobStore` keeps them under one
condition variable so status transitions are atomic and clients can
long-poll (``?wait=``) without burning requests.

The store also owns the *request-level* single-flight index: an in-flight
(queued or running) job is findable by its content-addressed request key,
so an identical submission coalesces onto the existing job instead of
queueing a duplicate. Terminal jobs leave the index immediately — repeat
requests after completion run again (and hit the polynomial cache instead).

Memory is bounded: terminal records beyond ``retain`` are evicted oldest
first, after which their ids answer 404. A daemon serving millions of
requests holds a window of recent history, not all of it.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

__all__ = ["JobRecord", "JobStore", "TERMINAL_STATUSES"]

TERMINAL_STATUSES = ("done", "failed", "expired", "cancelled")


def _new_job_id() -> str:
    return os.urandom(8).hex()


@dataclass
class JobRecord:
    """One verification/abstraction request through its lifecycle."""

    kind: str  # "verify" | "abstract"
    params: Dict  # executor-schema params (netlists inline as *_text)
    request_key: str
    priority: int = 5
    timeout: Optional[float] = None  # completion deadline, seconds from submit
    id: str = dataclass_field(default_factory=_new_job_id)
    status: str = "queued"
    created: float = dataclass_field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    result: Optional[Dict] = None
    error: Optional[str] = None
    coalesced: int = 0  # duplicate submissions served by this job
    # Monotonic deadline used internally; wall-clock fields are reporting.
    deadline: Optional[float] = dataclass_field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.timeout is not None and self.deadline is None:
            self.deadline = time.monotonic() + float(self.timeout)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_json(self) -> Dict:
        """Public wire form: everything but the (possibly large) netlists."""
        public_params = {
            k: v for k, v in self.params.items() if not k.endswith("_text")
        }
        doc: Dict = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "priority": self.priority,
            "params": public_params,
            "created": self.created,
            "coalesced": self.coalesced,
        }
        if self.timeout is not None:
            doc["timeout"] = self.timeout
        if self.started is not None:
            doc["started"] = self.started
            doc["queue_seconds"] = round(self.started - self.created, 6)
        if self.finished is not None:
            doc["finished"] = self.finished
            reference = self.started if self.started is not None else self.created
            doc["run_seconds"] = round(self.finished - reference, 6)
        if self.result is not None:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobStore:
    """Thread-safe registry of job records with long-poll support."""

    def __init__(self, retain: int = 1024):
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self._retain = retain
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: "Dict[str, JobRecord]" = {}  # insertion-ordered
        self._inflight_by_key: Dict[str, str] = {}

    # -- admission -----------------------------------------------------------

    def add(self, record: JobRecord) -> None:
        with self._lock:
            self._jobs[record.id] = record
            self._inflight_by_key[record.request_key] = record.id
            self._evict_locked()

    def find_inflight(self, request_key: str) -> Optional[JobRecord]:
        """The non-terminal job for ``request_key``, if one exists."""
        with self._lock:
            job_id = self._inflight_by_key.get(request_key)
            if job_id is None:
                return None
            record = self._jobs.get(job_id)
            if record is None or record.terminal:
                self._inflight_by_key.pop(request_key, None)
                return None
            return record

    def note_coalesced(self, record: JobRecord) -> None:
        with self._changed:
            record.coalesced += 1

    def remove(self, job_id: str) -> None:
        """Forget a record that never made it into the queue (429 path)."""
        with self._lock:
            record = self._jobs.pop(job_id, None)
            if (
                record is not None
                and self._inflight_by_key.get(record.request_key) == record.id
            ):
                del self._inflight_by_key[record.request_key]

    # -- lifecycle -----------------------------------------------------------

    def mark_running(self, record: JobRecord) -> None:
        with self._changed:
            record.status = "running"
            record.started = time.time()
            self._changed.notify_all()

    def finish(
        self,
        record: JobRecord,
        status: str,
        result: Optional[Dict] = None,
        error: Optional[str] = None,
    ) -> None:
        if status not in TERMINAL_STATUSES:
            raise ValueError(f"not a terminal status: {status!r}")
        with self._changed:
            record.status = status
            record.finished = time.time()
            record.result = result
            record.error = error
            # Drop the big request bodies as soon as the job is over — a
            # retained record costs a summary, not two netlists.
            record.params = {
                k: v for k, v in record.params.items() if not k.endswith("_text")
            }
            if self._inflight_by_key.get(record.request_key) == record.id:
                del self._inflight_by_key[record.request_key]
            self._evict_locked()
            self._changed.notify_all()

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float) -> Optional[JobRecord]:
        """Long-poll: return the record once terminal, or at the timeout.

        None means the id is unknown (or was evicted mid-wait).
        """
        deadline = time.monotonic() + timeout
        with self._changed:
            while True:
                record = self._jobs.get(job_id)
                if record is None or record.terminal:
                    return record
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return record
                self._changed.wait(remaining)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for record in self._jobs.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # -- internals -----------------------------------------------------------

    def _evict_locked(self) -> None:
        terminal: List[str] = [
            job_id
            for job_id, record in self._jobs.items()
            if record.terminal
        ]
        excess = len(terminal) - self._retain
        for job_id in terminal[:max(0, excess)]:
            del self._jobs[job_id]
