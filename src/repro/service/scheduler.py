"""Worker-thread scheduler: queue → executor bodies, with dedup and drain.

The scheduler owns the compute half of the daemon. Worker *threads* (not
processes) pull :class:`~repro.service.store.JobRecord` entries off the
bounded queue and run them through the same executor bodies the batch
runner uses (:func:`repro.jobs.executor.run_verify` /
:func:`run_abstract`), so a resident service answers exactly what
``repro verify`` would — but with three standing advantages a
process-per-request pipeline pays for on every call:

- **warm GF tables** — log/antilog and windowed-reduction tables are
  process-global caches; the scheduler warms each ``(k, modulus)`` on
  first sight (and any configured set at boot via
  :func:`repro.gf.logtables.warm`) and every later request reuses them;
- **shared polynomial cache + single-flight** — all workers share one
  content-addressed :class:`~repro.jobs.cache.CanonicalPolyCache` and one
  in-process :class:`~repro.service.singleflight.SingleFlight` group keyed
  on the cache key, so concurrent duplicate abstractions collapse to one
  computation even before the disk cache can serve them;
- **deadline-aware dispatch** — a job whose client deadline expired while
  it sat queued is marked ``expired`` without wasting a reduction on it.
  Deadlines are only enforced *at dequeue*: Python threads cannot be
  killed, so work that starts runs to completion.

Inside the cone-sliced abstraction the parallel fork-pool is left alone:
``extract_canonical``'s own single-CPU clamp and gate threshold decide
whether a request fans out further.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Iterable, Optional, Set, Tuple

from .. import obs
from ..gf import GF2m, logtables
from ..jobs.cache import CanonicalPolyCache
from ..jobs.executor import run_abstract, run_reveng, run_verify
from ..obs import metrics
from ..obs.costmodel import CostEstimator, CostModel
from .queue import BoundedJobQueue, QueueClosed
from .singleflight import SingleFlight
from .store import JobRecord, JobStore

__all__ = ["Scheduler"]

logger = logging.getLogger("repro.service")


class Scheduler:
    """Dispatch queued job records onto executor worker threads."""

    def __init__(
        self,
        queue: BoundedJobQueue,
        store: JobStore,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        seed: Optional[int] = None,
        cost_model_path: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.store = store
        self.cache = CanonicalPolyCache(cache_dir) if cache_dir else None
        self.inflight = SingleFlight(on_shared=self._note_shared)
        self._seed = seed
        self._workers = workers
        self._threads: list = []
        self._warmed: Set[Tuple[int, int]] = set()
        self._warm_lock = threading.Lock()
        # Per-(op, k) EWMA job-cost buckets seeding Retry-After hints on
        # 429s, optionally primed by a fitted cost model. The global EWMA
        # inside the estimator is the cold-start fallback — it starts at a
        # plausible small-field verify latency so the very first rejection
        # doesn't advertise zero.
        model = None
        if cost_model_path:
            try:
                model = CostModel.load(cost_model_path)
            except (OSError, ValueError, KeyError) as exc:
                logger.warning(
                    "cost model %s not loaded (%s); falling back to EWMA",
                    cost_model_path,
                    exc,
                )
        self.estimator = CostEstimator(default_seconds=0.5, model=model)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float = 30.0) -> int:
        """Close the queue, let workers finish, cancel the leftovers.

        Returns the number of jobs cancelled. Workers exit once the queue
        is both closed and empty; anything still queued past ``timeout``
        is pulled out and marked ``cancelled`` so no client poll hangs on
        a job that will never run.
        """
        self.queue.close()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(remaining)
        abandoned = self.queue.drain_remaining()
        for record in abandoned:
            self.store.finish(
                record, "cancelled", error="service shut down before the job ran"
            )
            metrics.counter_add(metrics.SERVICE_JOBS_CANCELLED, 1)
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            thread.join(max(0.0, remaining))
        return len(abandoned)

    @property
    def alive_workers(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    # -- GF table prewarm ----------------------------------------------------

    def prewarm(self, fields: Iterable[Tuple[int, Optional[int]]]) -> int:
        """Build GF tables for ``(k, modulus)`` pairs ahead of traffic.

        Tables are process-global, so one build here serves every worker
        thread for the daemon's lifetime. Invalid field specs are skipped
        (the request that names them will fail with a proper error).
        Returns the number of fields actually warmed.
        """
        warmed = 0
        for k, modulus in fields:
            try:
                field = GF2m(int(k), modulus=modulus)
            except (ValueError, TypeError) as exc:
                logger.warning("prewarm skipped k=%s: %s", k, exc)
                continue
            with self._warm_lock:
                if (field.k, field.modulus) in self._warmed:
                    continue
                self._warmed.add((field.k, field.modulus))
            logtables.warm(field.k, field.modulus)
            warmed += 1
        return warmed

    def warm_for_params(self, params: dict) -> None:
        """Lazily warm the field a submitted job will compute in."""
        k = params.get("k")
        if k is None:
            return
        modulus = params.get("modulus")
        if isinstance(modulus, str):
            try:
                modulus = int(modulus, 0)
            except ValueError:
                return
        self.prewarm([(k, modulus)])

    # -- hints ---------------------------------------------------------------

    def retry_after_hint(self) -> int:
        """Whole seconds a 429'd client should wait: one queue's worth of
        estimated work per worker, clamped to [1, 120].

        Each queued job is priced by its own (op, k) bucket — a burst of
        fast k=16 adds no longer poisons the estimate for queued k=64
        multiplies — with the fitted model, then the global EWMA, filling
        in for buckets that have never completed a job.
        """
        total = 0.0
        for record in self.queue.items():
            seconds, _ = self.estimator.estimate(
                record.kind, record.params.get("k")
            )
            total += seconds
        if total <= 0.0:
            total = self.estimator.global_estimate()
        estimate = total / self._workers
        return max(1, min(120, int(estimate + 0.999)))

    # -- internals -----------------------------------------------------------

    def _note_shared(self, key: str) -> None:
        metrics.counter_add(metrics.SERVICE_SINGLEFLIGHT_SHARED, 1)

    def _worker_loop(self) -> None:
        while True:
            try:
                record = self.queue.get(timeout=1.0)
            except QueueClosed:
                return
            if record is None:
                continue
            self._run_one(record)

    def _run_one(self, record: JobRecord) -> None:
        queued_ms = int((time.time() - record.created) * 1000)
        metrics.counter_add(metrics.SERVICE_QUEUE_WAIT_MS, max(0, queued_ms))
        if record.deadline is not None and time.monotonic() > record.deadline:
            self.store.finish(
                record,
                "expired",
                error=f"deadline ({record.timeout}s) passed while queued",
            )
            metrics.counter_add(metrics.SERVICE_JOBS_EXPIRED, 1)
            return

        self.store.mark_running(record)
        predicted, source = self.estimator.estimate(
            record.kind, record.params.get("k")
        )
        started = time.perf_counter()
        try:
            with obs.span(
                "service_job", id=record.id, kind=record.kind,
                priority=record.priority,
            ):
                if record.kind == "verify":
                    result = run_verify(
                        record.params,
                        cache=self.cache,
                        seed=self._seed,
                        inflight=self.inflight,
                    )
                elif record.kind == "abstract":
                    result = run_abstract(
                        record.params, cache=self.cache, inflight=self.inflight
                    )
                elif record.kind == "reveng":
                    result = run_reveng(
                        record.params, cache=self.cache, inflight=self.inflight
                    )
                else:
                    raise ValueError(f"unknown job kind {record.kind!r}")
        except Exception as exc:  # noqa: BLE001 — job faults become records
            self.store.finish(record, "failed", error=f"{type(exc).__name__}: {exc}")
            metrics.counter_add(metrics.SERVICE_JOBS_FAILED, 1)
            logger.warning("job %s failed: %s", record.id, exc)
        else:
            result["seconds"] = round(time.perf_counter() - started, 6)
            self.store.finish(record, "done", result=result)
            metrics.counter_add(metrics.SERVICE_JOBS_COMPLETED, 1)
        finally:
            seconds = time.perf_counter() - started
            self.estimator.observe(record.kind, record.params.get("k"), seconds)
            metrics.counter_add(metrics.COSTMODEL_PREDICTIONS, 1)
            if source == "global":
                metrics.counter_add(metrics.COSTMODEL_FALLBACKS, 1)
            metrics.counter_add(
                metrics.COSTMODEL_ABS_ERROR_MS,
                int(abs(seconds - predicted) * 1000),
            )
