"""Scheduler: queue → job bodies on the worker plane, with dedup and drain.

The scheduler owns the compute half of the daemon. Dispatcher threads pull
:class:`~repro.service.store.JobRecord` entries off the bounded queue and
run them through the same executor bodies the batch runner uses
(:func:`repro.jobs.executor.run_verify` / :func:`run_abstract`) — by
default on the resident :class:`~repro.jobs.plane.WorkerPlane`, one
in-flight job per worker *process*. Compared to the worker-thread design
this replaced, job bodies no longer contend on the GIL (two k=64 verifies
genuinely overlap on a multi-core box) and a job that segfaults or gets
OOM-killed takes down a respawnable plane worker, not the daemon. The
standing advantages of a resident service are kept:

- **warm state** — the daemon warms GF tables for each ``(k, modulus)``
  on first sight; plane workers warm theirs on first use and keep them
  for the plane's lifetime (they are resident too);
- **shared polynomial cache + admission dedup** — identical in-flight
  submissions coalesce onto one job at admission (request-key dedup in
  the store), and all workers share the content-addressed disk
  :class:`~repro.jobs.cache.CanonicalPolyCache`, so duplicate work is
  eliminated before and after computation. On the inline path the
  in-process :class:`~repro.service.singleflight.SingleFlight` group
  still collapses concurrent same-key abstractions;
- **telemetry merged home** — each plane job ships its worker's full
  trace snapshot (spans + counters + gauges) back with the result; the
  scheduler folds it into the daemon's collector so ``/metrics`` counts
  work wherever it ran;
- **deadline-aware dispatch** — a job whose client deadline expired while
  it sat queued is marked ``expired`` without wasting a reduction on it.
  Deadlines are only enforced *at dequeue*; work that starts runs to
  completion, as before.

Any :class:`~repro.jobs.plane.PoolError` (plane wedged, context not
picklable — e.g. monkeypatched job bodies in tests) falls back to running
the job inline on the dispatcher thread, which is exactly the old
behaviour; ``dispatch="inline"`` forces that mode. Inside the cone-sliced
abstraction nothing changes: plane workers are daemonic, so a job body
asking for parallel abstraction degrades to serial automatically.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Dict, Iterable, Optional, Set, Tuple

from .. import obs
from ..gf import GF2m, logtables
from ..jobs.cache import CanonicalPolyCache
from ..jobs.executor import run_abstract, run_reveng, run_verify
from ..obs import metrics
from ..obs.costmodel import CostEstimator, CostModel
from .queue import BoundedJobQueue, QueueClosed
from .singleflight import SingleFlight
from .store import JobRecord, JobStore

__all__ = ["Scheduler"]

logger = logging.getLogger("repro.service")


def _service_job_task(context: Dict, index: int) -> "Tuple[Dict, Dict]":
    """Plane-worker body for one service job.

    ``context`` carries the executor callable (pickled by reference — a
    monkeypatched or otherwise unpicklable body fails the publish and the
    scheduler runs it inline instead), the job params, and the cache
    directory. The worker opens its own handle on the shared disk cache;
    cross-process single-flight is unnecessary because identical in-flight
    submissions already coalesced at admission.
    """
    fn = context["fn"]
    cache_dir = context.get("cache_dir")
    cache = CanonicalPolyCache(cache_dir) if cache_dir else None
    kwargs: Dict = {"cache": cache}
    if context["kind"] == "verify":
        kwargs["seed"] = context.get("seed")
    return fn(context["params"], **kwargs), {}


class Scheduler:
    """Dispatch queued job records onto executor worker threads."""

    def __init__(
        self,
        queue: BoundedJobQueue,
        store: JobStore,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        seed: Optional[int] = None,
        cost_model_path: Optional[str] = None,
        dispatch: str = "plane",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if dispatch not in ("plane", "inline"):
            raise ValueError(f"dispatch must be 'plane' or 'inline', got {dispatch!r}")
        self.queue = queue
        self.store = store
        self.cache = CanonicalPolyCache(cache_dir) if cache_dir else None
        self.inflight = SingleFlight(on_shared=self._note_shared)
        self._cache_dir = cache_dir
        self._dispatch = dispatch
        self._seed = seed
        self._workers = workers
        self._threads: list = []
        self._warmed: Set[Tuple[int, int]] = set()
        self._warm_lock = threading.Lock()
        # Per-(op, k) EWMA job-cost buckets seeding Retry-After hints on
        # 429s, optionally primed by a fitted cost model. The global EWMA
        # inside the estimator is the cold-start fallback — it starts at a
        # plausible small-field verify latency so the very first rejection
        # doesn't advertise zero.
        model = None
        if cost_model_path:
            try:
                model = CostModel.load(cost_model_path)
            except (OSError, ValueError, KeyError) as exc:
                logger.warning(
                    "cost model %s not loaded (%s); falling back to EWMA",
                    cost_model_path,
                    exc,
                )
        self.estimator = CostEstimator(default_seconds=0.5, model=model)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float = 30.0) -> int:
        """Close the queue, let workers finish, cancel the leftovers.

        Returns the number of jobs cancelled. Workers exit once the queue
        is both closed and empty; anything still queued past ``timeout``
        is pulled out and marked ``cancelled`` so no client poll hangs on
        a job that will never run.
        """
        self.queue.close()
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                thread.join(remaining)
        abandoned = self.queue.drain_remaining()
        for record in abandoned:
            self.store.finish(
                record, "cancelled", error="service shut down before the job ran"
            )
            metrics.counter_add(metrics.SERVICE_JOBS_CANCELLED, 1)
        for thread in self._threads:
            remaining = deadline - time.monotonic()
            thread.join(max(0.0, remaining))
        return len(abandoned)

    @property
    def alive_workers(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    # -- GF table prewarm ----------------------------------------------------

    def prewarm(self, fields: Iterable[Tuple[int, Optional[int]]]) -> int:
        """Build GF tables for ``(k, modulus)`` pairs ahead of traffic.

        Tables are process-global, so one build here serves every worker
        thread for the daemon's lifetime. Invalid field specs are skipped
        (the request that names them will fail with a proper error).
        Returns the number of fields actually warmed.
        """
        warmed = 0
        for k, modulus in fields:
            try:
                field = GF2m(int(k), modulus=modulus)
            except (ValueError, TypeError) as exc:
                logger.warning("prewarm skipped k=%s: %s", k, exc)
                continue
            with self._warm_lock:
                if (field.k, field.modulus) in self._warmed:
                    continue
                self._warmed.add((field.k, field.modulus))
            logtables.warm(field.k, field.modulus)
            warmed += 1
        return warmed

    def warm_for_params(self, params: dict) -> None:
        """Lazily warm the field a submitted job will compute in."""
        k = params.get("k")
        if k is None:
            return
        modulus = params.get("modulus")
        if isinstance(modulus, str):
            try:
                modulus = int(modulus, 0)
            except ValueError:
                return
        self.prewarm([(k, modulus)])

    # -- hints ---------------------------------------------------------------

    def retry_after_hint(self) -> int:
        """Whole seconds a 429'd client should wait: one queue's worth of
        estimated work per worker, clamped to [1, 120].

        Each queued job is priced by its own (op, k) bucket — a burst of
        fast k=16 adds no longer poisons the estimate for queued k=64
        multiplies — with the fitted model, then the global EWMA, filling
        in for buckets that have never completed a job.
        """
        total = 0.0
        for record in self.queue.items():
            seconds, _ = self.estimator.estimate(
                record.kind, record.params.get("k")
            )
            total += seconds
        if total <= 0.0:
            total = self.estimator.global_estimate()
        estimate = total / self._workers
        return max(1, min(120, int(estimate + 0.999)))

    # -- internals -----------------------------------------------------------

    def _note_shared(self, key: str) -> None:
        metrics.counter_add(metrics.SERVICE_SINGLEFLIGHT_SHARED, 1)

    def _worker_loop(self) -> None:
        while True:
            try:
                record = self.queue.get(timeout=1.0)
            except QueueClosed:
                return
            if record is None:
                continue
            self._run_one(record)

    def _run_one(self, record: JobRecord) -> None:
        queued_ms = int((time.time() - record.created) * 1000)
        metrics.counter_add(metrics.SERVICE_QUEUE_WAIT_MS, max(0, queued_ms))
        if record.deadline is not None and time.monotonic() > record.deadline:
            self.store.finish(
                record,
                "expired",
                error=f"deadline ({record.timeout}s) passed while queued",
            )
            metrics.counter_add(metrics.SERVICE_JOBS_EXPIRED, 1)
            return

        self.store.mark_running(record)
        predicted, source = self.estimator.estimate(
            record.kind, record.params.get("k")
        )
        started = time.perf_counter()
        try:
            with obs.span(
                "service_job", id=record.id, kind=record.kind,
                priority=record.priority,
            ):
                result = self._execute(record)
        except Exception as exc:  # noqa: BLE001 — job faults become records
            self.store.finish(record, "failed", error=f"{type(exc).__name__}: {exc}")
            metrics.counter_add(metrics.SERVICE_JOBS_FAILED, 1)
            logger.warning("job %s failed: %s", record.id, exc)
        else:
            result["seconds"] = round(time.perf_counter() - started, 6)
            self.store.finish(record, "done", result=result)
            metrics.counter_add(metrics.SERVICE_JOBS_COMPLETED, 1)
        finally:
            seconds = time.perf_counter() - started
            self.estimator.observe(record.kind, record.params.get("k"), seconds)
            metrics.counter_add(metrics.COSTMODEL_PREDICTIONS, 1)
            if source == "global":
                metrics.counter_add(metrics.COSTMODEL_FALLBACKS, 1)
            metrics.counter_add(
                metrics.COSTMODEL_ABS_ERROR_MS,
                int(abs(seconds - predicted) * 1000),
            )

    def _job_body(self, kind: str):
        """The executor callable for ``kind`` — resolved through this
        module's globals so test monkeypatches are honoured on both
        dispatch paths."""
        if kind == "verify":
            return run_verify
        if kind == "abstract":
            return run_abstract
        if kind == "reveng":
            return run_reveng
        raise ValueError(f"unknown job kind {kind!r}")

    def _execute(self, record: JobRecord) -> Dict:
        body = self._job_body(record.kind)
        if self._dispatch == "plane":
            from ..jobs.plane import PoolError

            try:
                return self._execute_on_plane(record, body)
            except PoolError as exc:
                metrics.counter_add(metrics.SERVICE_PLANE_FALLBACKS, 1)
                logger.debug(
                    "job %s not dispatched to the plane (%s); running inline",
                    record.id,
                    exc,
                )
        return self._execute_inline(record, body)

    def _execute_on_plane(self, record: JobRecord, body) -> Dict:
        """Run one job on a plane worker process; merge its telemetry home."""
        from ..jobs.plane import get_plane

        context = {
            "fn": body,
            "kind": record.kind,
            "params": record.params,
            "cache_dir": self._cache_dir,
            "seed": self._seed,
        }
        [res] = get_plane().map(
            _service_job_task, context, [0], workers=1, retries=1
        )
        collector = obs.active_collector()
        if res.snapshot and collector is not None:
            # The worker's spans, counters and gauges (extraction counts,
            # cache traffic, peak terms) land in the daemon's collector so
            # /metrics reports the work no matter which process did it.
            collector.merge(res.snapshot)
        metrics.counter_add(metrics.SERVICE_PLANE_JOBS, 1)
        return res.payload

    def _execute_inline(self, record: JobRecord, body) -> Dict:
        return body(
            record.params,
            cache=self.cache,
            inflight=self.inflight,
            **({"seed": self._seed} if record.kind == "verify" else {}),
        )
