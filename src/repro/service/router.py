"""Consistent-hash shard router: one front door for N verification daemons.

``repro route --backends a:8014,b:8014`` boots a :class:`RouterService` — a
thin HTTP proxy that places every submission on a *shard* chosen by
consistent-hashing its :func:`~repro.service.server.request_key`. Identical
work always lands on the same daemon, so the per-shard canonical-polynomial
cache, warm GF tables and in-flight dedup all keep paying even when the
fleet grows; adding or removing a shard remaps only ``~1/N`` of the key
space (the classic hash-ring property) instead of reshuffling everything.

The router rewrites nothing. Request bodies are forwarded byte-for-byte and
shard responses are returned byte-for-byte (status, ``Content-Type``,
``Retry-After`` and all), so a response served through the router is
identical to one fetched from the owning daemon directly — job ids stay
valid against either door.

Routing policy per submission:

- hash the request key onto the ring; walk the ring's preference order,
  healthiest first — the primary owner unless its health probe failed;
- give each backend a small retry budget for ``429``/``503`` answers,
  sleeping the server's ``Retry-After`` hint (capped) between attempts;
- on connection failure mark the backend down (the prober brings it back)
  and fail over to the next ring position;
- when every backend is down or exhausted, answer ``503`` and count it
  ``router.unroutable``.

``GET /v1/jobs/{id}`` uses a bounded id→shard memory populated at submit
time; an id the router never saw (restart, direct submission to a shard)
fans out to every live backend and returns the first non-404 answer.

Endpoints: the full ``/v1`` surface proxied as above, ``/healthz`` (router
doc incl. per-backend health), ``/readyz`` (200 while ≥1 backend is up),
``/metrics`` (router's own ``router.*`` counters plus every backend's
samples re-labelled ``{backend="host:port"}``).
"""

from __future__ import annotations

import http.client
import json
import logging
import signal
import socket
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass, field as dataclass_field
from hashlib import sha256
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlparse

from .. import __version__, obs
from ..obs import metrics, render_prometheus
from .server import request_key

__all__ = ["RouterConfig", "RouterService", "HashRing", "route"]

logger = logging.getLogger("repro.service.router")

_SUBMIT_PATHS = {"/v1/verify": "verify", "/v1/abstract": "abstract",
                 "/v1/reveng": "reveng"}
#: Response headers forwarded verbatim from the shard to the client.
_PROXIED_HEADERS = ("Content-Type", "Retry-After")


class HashRing:
    """Consistent hash ring over backend addresses, with virtual nodes.

    ``preference(key)`` returns every backend exactly once, ordered by ring
    position starting at the key's hash point: element 0 is the primary
    owner, the rest is the deterministic failover order. With ``vnodes``
    replicas per backend the key space splits evenly and removing one
    backend moves only its own share of keys.
    """

    def __init__(self, backends: List[str], vnodes: int = 64):
        if not backends:
            raise ValueError("hash ring needs at least one backend")
        self.backends = list(dict.fromkeys(backends))  # dedup, keep order
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for address in self.backends:
            for replica in range(vnodes):
                digest = sha256(f"{address}#{replica}".encode()).digest()
                points.append((int.from_bytes(digest[:8], "big"), address))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [a for _, a in points]

    def primary(self, key: str) -> str:
        return self.preference(key)[0]

    def preference(self, key: str) -> List[str]:
        digest = sha256(key.encode()).digest()
        start = bisect_right(self._points, int.from_bytes(digest[:8], "big"))
        seen: List[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.backends):
                    break
        return seen


@dataclass
class RouterConfig:
    """Everything ``repro route`` can tune."""

    backends: List[str] = dataclass_field(default_factory=list)
    host: str = "127.0.0.1"
    port: int = 8013
    #: Virtual nodes per backend on the ring.
    vnodes: int = 64
    #: Seconds between active ``/readyz`` probes of each backend.
    health_interval: float = 2.0
    probe_timeout: float = 2.0
    #: Attempts per backend for 429/503 answers before failing over.
    retry_budget: int = 2
    #: Cap on honouring a shard's ``Retry-After`` hint, seconds.
    retry_after_cap: float = 5.0
    #: Socket timeout for proxied requests (shard jobs answer 202 fast;
    #: long-poll GETs are the slow path).
    proxy_timeout: float = 330.0
    #: Bounded job-id → backend memory (oldest evicted first).
    job_memory: int = 8192
    max_spans: int = 2000
    port_file: Optional[str] = None


class _Backend:
    """One shard: address, probed health, passive failure marking."""

    __slots__ = ("address", "host", "port", "healthy", "last_error")

    def __init__(self, address: str):
        self.address = address
        host, _, port = address.rpartition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port)
        self.healthy = True  # optimistic until the first probe says otherwise
        self.last_error: Optional[str] = None

    def set_health(self, healthy: bool, reason: Optional[str] = None) -> bool:
        """Returns True when this call flipped the state."""
        flipped = self.healthy != healthy
        self.healthy = healthy
        self.last_error = None if healthy else reason
        return flipped


class _ProxyResponse:
    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes):
        self.status = status
        self.headers = headers
        self.body = body


class RouterService:
    """The shard router daemon: hash ring + health prober + HTTP proxy."""

    def __init__(self, config: RouterConfig):
        if not config.backends:
            raise ValueError("router needs --backends")
        self.config = config
        self.ring = HashRing(config.backends, vnodes=config.vnodes)
        self.backends = {a: _Backend(a) for a in self.ring.backends}
        self._jobs: "OrderedDict[str, str]" = OrderedDict()
        self._jobs_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._prober: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._started = time.time()
        self._previous_collector = None

    # -- health --------------------------------------------------------------

    def healthy_count(self) -> int:
        return sum(1 for b in self.backends.values() if b.healthy)

    def probe_backend(self, backend: _Backend) -> bool:
        try:
            conn = http.client.HTTPConnection(
                backend.host, backend.port, timeout=self.config.probe_timeout
            )
            try:
                conn.request("GET", "/readyz")
                response = conn.getresponse()
                response.read()
                up = response.status == 200
                reason = None if up else f"readyz answered {response.status}"
            finally:
                conn.close()
        except (OSError, http.client.HTTPException) as exc:
            up, reason = False, f"{type(exc).__name__}: {exc}"
        if backend.set_health(up, reason):
            metrics.counter_add(metrics.ROUTER_HEALTH_TRANSITIONS, 1)
            logger.info(
                "backend %s is %s%s", backend.address,
                "up" if up else "down", "" if up else f" ({reason})",
            )
        return up

    def probe_all(self) -> int:
        for backend in self.backends.values():
            self.probe_backend(backend)
        return self.healthy_count()

    def _probe_loop(self) -> None:
        while not self._stop.wait(self.config.health_interval):
            self.probe_all()

    # -- job memory ----------------------------------------------------------

    def remember_job(self, job_id: str, address: str) -> None:
        with self._jobs_lock:
            self._jobs[job_id] = address
            self._jobs.move_to_end(job_id)
            while len(self._jobs) > self.config.job_memory:
                self._jobs.popitem(last=False)

    def job_owner(self, job_id: str) -> Optional[str]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    # -- proxy transport -----------------------------------------------------

    def _proxy_once(
        self,
        backend: _Backend,
        method: str,
        path: str,
        body: Optional[bytes],
        timeout: Optional[float] = None,
    ) -> _ProxyResponse:
        headers = {}
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            backend.host, backend.port,
            timeout=timeout or self.config.proxy_timeout,
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            kept = {
                name: value
                for name in _PROXIED_HEADERS
                if (value := response.getheader(name)) is not None
            }
            return _ProxyResponse(response.status, kept, data)
        finally:
            conn.close()

    # -- routing -------------------------------------------------------------

    def submission_key(self, kind: str, raw_body: bytes) -> Optional[str]:
        """The request key a shard would compute, or None on junk input.

        Junk still routes (to the primary of an empty key) so the owning
        shard can answer the 400 itself — the router validates nothing.
        """
        try:
            body = json.loads(raw_body)
            if not isinstance(body, dict):
                return None
            return request_key(kind, body)
        except (json.JSONDecodeError, TypeError, ValueError):
            return None

    def route_submission(self, kind: str, raw_body: bytes) -> _ProxyResponse:
        metrics.counter_add(metrics.ROUTER_REQUESTS, 1)
        key = self.submission_key(kind, raw_body) or ""
        preference = self.ring.preference(key)
        path = f"/v1/{kind}"
        last_busy: Optional[_ProxyResponse] = None
        for rank, address in enumerate(preference):
            backend = self.backends[address]
            if not backend.healthy:
                continue
            response = self._attempt_backend(backend, "POST", path, raw_body)
            if response is None:
                continue  # connection-dead: marked down, fail over
            if response.status in (429, 503):
                last_busy = response
                continue  # budget exhausted on a live-but-busy shard
            metrics.counter_add(
                metrics.ROUTER_PRIMARY_ROUTED if rank == 0
                else metrics.ROUTER_FAILOVER_ROUTED, 1,
            )
            self._remember_from_response(response, address)
            return response
        if last_busy is not None:
            # Every reachable shard said "come back later": relay the most
            # recent such answer, Retry-After intact.
            return last_busy
        metrics.counter_add(metrics.ROUTER_UNROUTABLE, 1)
        return _ProxyResponse(
            503,
            {"Content-Type": "application/json", "Retry-After": "5"},
            json.dumps({"error": "no backend available"}).encode(),
        )

    def _attempt_backend(
        self, backend: _Backend, method: str, path: str, body: Optional[bytes]
    ) -> Optional[_ProxyResponse]:
        """Budgeted attempts against one backend.

        Returns the final response (possibly still 429/503 once the budget
        is spent), or None when the backend dropped the connection — which
        also marks it down for the prober to resurrect.
        """
        for attempt in range(max(1, self.config.retry_budget)):
            try:
                response = self._proxy_once(backend, method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                if backend.set_health(False, f"{type(exc).__name__}: {exc}"):
                    metrics.counter_add(metrics.ROUTER_HEALTH_TRANSITIONS, 1)
                    logger.info("backend %s is down (%s)", backend.address, exc)
                return None
            if response.status not in (429, 503):
                return response
            if attempt + 1 >= max(1, self.config.retry_budget):
                return response
            metrics.counter_add(metrics.ROUTER_RETRIES, 1)
            time.sleep(self._retry_delay(response))
        return None  # pragma: no cover — loop always returns

    def _retry_delay(self, response: _ProxyResponse) -> float:
        hint = response.headers.get("Retry-After")
        if hint:
            try:
                return min(float(hint), self.config.retry_after_cap)
            except ValueError:
                pass
        return min(0.25, self.config.retry_after_cap)

    def _remember_from_response(
        self, response: _ProxyResponse, address: str
    ) -> None:
        if response.status not in (200, 202):
            return
        try:
            job_id = json.loads(response.body).get("id")
        except (json.JSONDecodeError, AttributeError):
            return
        if job_id:
            self.remember_job(str(job_id), address)

    def route_job_get(self, job_id: str, query: str) -> _ProxyResponse:
        metrics.counter_add(metrics.ROUTER_JOB_LOOKUPS, 1)
        path = f"/v1/jobs/{job_id}" + (f"?{query}" if query else "")
        owner = self.job_owner(job_id)
        if owner is not None:
            backend = self.backends[owner]
            if backend.healthy:
                response = self._attempt_backend(backend, "GET", path, None)
                if response is not None and response.status != 404:
                    return response
        # Unknown id (router restarted, job submitted shard-direct) or the
        # remembered owner lost it: ask everyone still standing.
        metrics.counter_add(metrics.ROUTER_JOB_FANOUTS, 1)
        for address, backend in self.backends.items():
            if address == owner or not backend.healthy:
                continue
            response = self._attempt_backend(backend, "GET", path, None)
            if response is not None and response.status != 404:
                self.remember_job(job_id, address)
                return response
        return _ProxyResponse(
            404,
            {"Content-Type": "application/json"},
            json.dumps({"error": f"unknown job id {job_id!r}"}).encode(),
        )

    # -- introspection -------------------------------------------------------

    def health(self) -> Dict:
        return {
            "status": "ok",
            "role": "router",
            "version": __version__,
            "uptime_seconds": round(time.time() - self._started, 1),
            "backends": {
                b.address: {
                    "healthy": b.healthy,
                    **({"error": b.last_error} if b.last_error else {}),
                }
                for b in self.backends.values()
            },
            "backends_healthy": self.healthy_count(),
            "vnodes": self.config.vnodes,
            "jobs_remembered": len(self._jobs),
        }

    def render_metrics(self) -> str:
        collector = obs.active_collector()
        snapshot = collector.snapshot() if collector is not None else {}
        body = render_prometheus(
            snapshot,
            extra_gauges={
                "router.backends_healthy": self.healthy_count(),
                "router.uptime_seconds": round(time.time() - self._started, 1),
            },
        )
        for backend in self.backends.values():
            if not backend.healthy:
                continue
            try:
                scraped = self._proxy_once(
                    backend, "GET", "/metrics", None, timeout=5.0
                )
            except (OSError, http.client.HTTPException):
                continue
            if scraped.status != 200:
                continue
            body += f"# backend {backend.address}\n"
            body += _relabel(scraped.body.decode(), backend.address)
        return body

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("router is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        self._previous_collector = obs.active_collector()
        obs.enable(obs.TraceCollector(max_spans=self.config.max_spans))
        self.probe_all()
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-router-prober", daemon=True
        )
        self._prober.start()
        self._httpd = _RouterServer((self.config.host, self.config.port), self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-router-http",
            daemon=True,
        )
        self._http_thread.start()
        host, port = self.address
        if self.config.port_file:
            with open(self.config.port_file, "w") as handle:
                handle.write(f"{host}:{port}\n")
        logger.info(
            "repro %s routing on %s:%d across %d backend(s), %d up",
            __version__, host, port, len(self.backends), self.healthy_count(),
        )
        return host, port

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        if self._prober is not None:
            self._prober.join(timeout=5.0)
        obs.disable()
        if self._previous_collector is not None:
            obs.enable(self._previous_collector)

    def run_until_signal(self) -> int:
        done = threading.Event()

        def _handle(signum, frame):  # noqa: ARG001 — signal API
            logger.info("received %s, stopping", signal.Signals(signum).name)
            done.set()

        previous = {
            sig: signal.signal(sig, _handle)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            done.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        self.stop()
        return 0


def _relabel(exposition: str, address: str) -> str:
    """Inject ``backend="address"`` into every sample of a scrape.

    Comment/``# TYPE`` lines are dropped — the aggregate would otherwise
    redeclare types per backend, which scrapers reject.
    """
    out: List[str] = []
    for line in exposition.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            continue
        if name.endswith("}"):
            name = name[:-1] + f',backend="{address}"}}'
        else:
            name = name + f'{{backend="{address}"}}'
        out.append(f"{name} {value}")
    return "\n".join(out) + ("\n" if out else "")


class _RouterHandler(BaseHTTPRequestHandler):
    server_version = f"repro-router/{__version__}"
    protocol_version = "HTTP/1.1"

    def version_string(self) -> str:
        return self.server_version

    @property
    def router(self) -> RouterService:
        return self.server.router  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _reply(self, response: _ProxyResponse) -> None:
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    def _send_json(self, status: int, doc: Dict) -> None:
        payload = json.dumps(doc, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str) -> None:
        payload = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = urlparse(self.path).path
        try:
            kind = _SUBMIT_PATHS.get(path)
            if kind is None:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
            self._reply(self.router.route_submission(kind, raw))
        except Exception as exc:  # noqa: BLE001 — handler must answer
            logger.exception("unhandled error routing POST %s", path)
            self._send_json(502, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        path = parsed.path
        try:
            if path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/"):]
                self._reply(self.router.route_job_get(job_id, parsed.query))
            elif path == "/healthz":
                self._send_json(200, self.router.health())
            elif path == "/readyz":
                if self.router.healthy_count() > 0:
                    self._send_text(200, "ready\n")
                else:
                    self._send_text(503, "no backends\n")
            elif path == "/metrics":
                self._send_text(200, self.router.render_metrics())
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except Exception as exc:  # noqa: BLE001
            logger.exception("unhandled error routing GET %s", path)
            self._send_json(502, {"error": f"{type(exc).__name__}: {exc}"})


class _RouterServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, router: RouterService):
        self.router = router
        super().__init__(address, _RouterHandler)


def route(config: RouterConfig) -> int:
    """Boot a router and run until signalled (the ``repro route`` body)."""
    router = RouterService(config)
    try:
        router.start()
    except (OSError, socket.error) as exc:
        logger.error("cannot bind %s:%d: %s", config.host, config.port, exc)
        return 2
    return router.run_until_signal()
