"""Long-running verification service: HTTP daemon, queue, dedup, client.

The resident alternative to process-per-request verification. One daemon
(``repro serve``) holds warm GF tables, a shared canonical-polynomial
cache, and an in-process single-flight group; clients (``repro submit`` /
:class:`ServiceClient`) stream netlists over HTTP and poll for verdicts.

Layering, bottom up:

:mod:`~repro.service.singleflight`
    Concurrent-duplicate suppression keyed on the executor's
    content-addressed cache key.
:mod:`~repro.service.queue`
    Bounded priority admission queue — rejects (429) rather than blocks,
    closes-then-drains for shutdown.
:mod:`~repro.service.store`
    Job records, request-level dedup index, long-poll support.
:mod:`~repro.service.scheduler`
    Worker threads running the same executor bodies as ``repro batch``.
:mod:`~repro.service.server`
    The HTTP front end and graceful-drain lifecycle.
:mod:`~repro.service.client`
    Retry/backoff client with connection reuse.
:mod:`~repro.service.router`
    Consistent-hash shard router fronting a fleet of daemons.
"""

from .client import ServiceClient, ServiceError, ServiceUnavailable
from .queue import BoundedJobQueue, QueueClosed, QueueFull
from .router import HashRing, RouterConfig, RouterService, route
from .scheduler import Scheduler
from .server import ServiceConfig, VerificationService, request_key, serve
from .singleflight import SingleFlight
from .store import JobRecord, JobStore, TERMINAL_STATUSES

__all__ = [
    "BoundedJobQueue",
    "HashRing",
    "JobRecord",
    "JobStore",
    "QueueClosed",
    "QueueFull",
    "RouterConfig",
    "RouterService",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "SingleFlight",
    "TERMINAL_STATUSES",
    "VerificationService",
    "request_key",
    "route",
    "serve",
]
