"""The verification daemon: HTTP front end, admission control, drain.

``repro serve`` boots a :class:`VerificationService` — a resident process
that answers equivalence checks over HTTP so repeated queries amortise
GF-table construction, the canonical-polynomial cache, and parsing
infrastructure across requests instead of paying process start-up per
check. Endpoints:

``POST /v1/verify``, ``POST /v1/abstract``, ``POST /v1/reveng``
    Submit a job (netlists inline as ``spec_text``/``impl_text``/
    ``netlist_text``; field as ``k`` + optional ``modulus``). Answers
    ``202`` with a job id — or ``200`` with the id of an *identical
    in-flight job* (request-level dedup), ``400`` on malformed input,
    ``429`` + ``Retry-After`` when the bounded queue is full, ``503``
    while draining. Reveng submissions select an engine via ``mode``:
    ``"poly"`` (recover an unknown field polynomial; optional degree
    ``m``) or ``"func"`` (identify the function over a known field;
    requires ``k``).
``GET /v1/jobs/{id}``
    Poll a job; ``?wait=SECONDS`` long-polls until the job is terminal.
``GET /healthz``
    Liveness + build info (version, uptime, worker/queue state).
``GET /readyz``
    ``200`` while accepting work, ``503`` once draining begins.
``GET /metrics``
    Prometheus text exposition of the :mod:`repro.obs` counters/gauges
    plus point-in-time queue depth and job-state counts.

SIGTERM/SIGINT starts a graceful drain: admission stops (readyz flips),
queued and running jobs finish within ``drain_timeout``, leftovers are
marked ``cancelled``, and the process exits 0 — the contract the CI
service-smoke job enforces.
"""

from __future__ import annotations

import hashlib
import json
import logging
import signal
import socket
import threading
import time
from dataclasses import dataclass, field as dataclass_field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .. import __version__, kernels, obs
from ..obs import metrics, render_prometheus
from .queue import BoundedJobQueue, QueueClosed, QueueFull
from .scheduler import Scheduler
from .store import JobRecord, JobStore

__all__ = ["ServiceConfig", "VerificationService", "request_key", "serve"]

logger = logging.getLogger("repro.service")

#: Fields of a submission that define *what is computed* — the request key
#: hashes exactly these, so cosmetic fields (priority, timeout) never split
#: identical work into separate jobs.
_KEYED_FIELDS = (
    "k",
    "modulus",
    "case2",
    "jobs",
    "output_word",
    "spec",
    "impl",
    "netlist",
    "spec_text",
    "impl_text",
    "netlist_text",
    # reveng-only knobs: engine mode, sweep degree and termination policy
    # all change what is computed, so they participate in dedup keys.
    "mode",
    "m",
    "spec_form",
    "forms",
    "all",
    "limit",
    # The prepass changes no verdict (Cor. 4.1: canonical polynomials are
    # prepass-invariant) but it is still keyed: a client explicitly asking
    # for a raw-netlist run must not be answered by a prepassed job's
    # record, whose stats/phases differ.
    "prepass",
)

_TEXT_OR_PATH = {
    "verify": (("spec", "spec_text"), ("impl", "impl_text")),
    "abstract": (("netlist", "netlist_text"),),
    "reveng": (("netlist", "netlist_text"),),
}


class RequestError(Exception):
    """Client-side error: becomes an HTTP 4xx with a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def request_key(kind: str, params: Dict) -> str:
    """Content hash identifying what a submission computes.

    Two submissions with the same kind, field, engine knobs and netlist
    bodies get the same key; the store uses it to coalesce duplicate
    in-flight requests onto one job.
    """
    keyed = {k: params[k] for k in _KEYED_FIELDS if params.get(k) is not None}
    blob = json.dumps({"kind": kind, **keyed}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _validate_submission(kind: str, body: Dict) -> Tuple[Dict, int, Optional[float]]:
    """Check a submission body; returns (executor params, priority, timeout)."""
    if not isinstance(body, dict):
        raise RequestError(400, "request body must be a JSON object")
    mode: Optional[str] = None
    if kind == "reveng":
        mode = str(body.get("mode", "poly"))
        if mode not in ("poly", "func"):
            raise RequestError(
                400, f"field 'mode' must be 'poly' or 'func', got {mode!r}"
            )
    # A polynomial-recovery sweep is the one submission with no field size:
    # the modulus is the unknown. It takes an optional degree 'm' instead.
    k: Optional[int] = None
    k_required = kind != "reveng" or mode == "func"
    if k_required and "k" not in body:
        raise RequestError(400, "missing required field 'k'")
    if "k" in body:
        try:
            k = int(body["k"])
        except (TypeError, ValueError):
            raise RequestError(400, f"field 'k' must be an integer, got {body['k']!r}")
        if k < 1:
            raise RequestError(400, f"field 'k' must be >= 1, got {k}")
    if body.get("m") is not None:
        try:
            degree = int(body["m"])
        except (TypeError, ValueError):
            raise RequestError(400, f"field 'm' must be an integer, got {body['m']!r}")
        if degree < 2:
            raise RequestError(400, f"field 'm' must be >= 2, got {degree}")

    for path_key, text_key in _TEXT_OR_PATH[kind]:
        if body.get(path_key) is None and body.get(text_key) is None:
            raise RequestError(
                400, f"missing netlist: provide '{text_key}' (inline body) "
                f"or '{path_key}' (path on the server host)"
            )

    try:
        priority = int(body.get("priority", 5))
    except (TypeError, ValueError):
        raise RequestError(400, f"invalid priority {body.get('priority')!r}")
    if not 0 <= priority <= 9:
        raise RequestError(400, f"priority must be in [0, 9], got {priority}")

    timeout: Optional[float] = None
    if body.get("timeout") is not None:
        try:
            timeout = float(body["timeout"])
        except (TypeError, ValueError):
            raise RequestError(400, f"invalid timeout {body.get('timeout')!r}")
        if timeout <= 0:
            raise RequestError(400, f"timeout must be > 0, got {timeout}")

    allowed = {
        "k", "modulus", "case2", "jobs", "output_word", "prepass",
        "spec", "impl", "netlist", "spec_text", "impl_text", "netlist_text",
    }
    if kind == "reveng":
        allowed |= {"mode", "m", "spec_form", "forms", "all", "limit"}
    params = {key: body[key] for key in allowed if body.get(key) is not None}
    if k is not None:
        params["k"] = k
    if mode is not None:
        params["mode"] = mode
    return params, priority, timeout


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8014
    workers: int = 2
    #: ``"plane"`` runs job bodies on the resident worker plane (process
    #: isolation, true parallelism); ``"inline"`` keeps them on the
    #: dispatcher threads (the pre-plane behaviour).
    dispatch: str = "plane"
    #: ``"I/N"`` when this daemon is shard I of an N-shard cluster behind
    #: ``repro route`` — surfaced on /healthz and /metrics so the router
    #: and operators can tell shards apart. None for a standalone daemon.
    shard_of: Optional[str] = None
    queue_capacity: int = 64
    cache_dir: Optional[str] = None
    retain: int = 1024
    drain_timeout: float = 30.0
    max_request_bytes: int = 32 * 1024 * 1024
    max_spans: int = 20000
    seed: Optional[int] = None
    #: Fitted cost model (``repro costmodel fit`` output) priming the
    #: Retry-After estimator's cold-start predictions.
    cost_model: Optional[str] = None
    #: Capacity of the in-memory REDTRACE flight recorder (ring mode);
    #: 0 disables it. It exists so ``trace.*`` metrics reflect live
    #: engine traffic on ``/metrics`` — it is not a replayable artifact.
    trace_ring: int = 20000
    #: ``(k, modulus)`` pairs whose GF tables are built before the first
    #: request (modulus None = the NIST default for that k).
    prewarm: List[Tuple[int, Optional[int]]] = dataclass_field(default_factory=list)
    #: When set, the bound address is written here as ``host:port`` once
    #: listening — the handshake for tests and scripts using port 0.
    port_file: Optional[str] = None


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`VerificationService`."""

    server_version = f"repro/{__version__}"
    protocol_version = "HTTP/1.1"  # keep-alive, so clients reuse connections

    def version_string(self) -> str:
        return self.server_version  # no Python version fingerprint

    @property
    def service(self) -> "VerificationService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, doc: Dict, headers: Optional[Dict] = None):
        payload = json.dumps(doc, default=str).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str = "text/plain"):
        payload = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError(400, "missing request body")
        if length > self.service.config.max_request_bytes:
            raise RequestError(
                413,
                f"request body {length} bytes exceeds the "
                f"{self.service.config.max_request_bytes} byte limit",
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(400, f"invalid JSON body: {exc}")

    # -- routes --------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = urlparse(self.path).path
        try:
            if path == "/v1/verify":
                self._submit("verify")
            elif path == "/v1/abstract":
                self._submit("abstract")
            elif path == "/v1/reveng":
                self._submit("reveng")
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except RequestError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — handler must answer
            logger.exception("unhandled error serving POST %s", path)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        path = parsed.path
        try:
            if path.startswith("/v1/jobs/"):
                self._get_job(path[len("/v1/jobs/"):], parse_qs(parsed.query))
            elif path == "/healthz":
                self._send_json(200, self.service.health())
            elif path == "/readyz":
                if self.service.accepting:
                    self._send_text(200, "ready\n")
                else:
                    self._send_text(503, "draining\n")
            elif path == "/metrics":
                self._send_text(200, self.service.render_metrics())
            else:
                self._send_json(404, {"error": f"no such endpoint: {path}"})
        except RequestError as exc:
            self._send_json(exc.status, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001
            logger.exception("unhandled error serving GET %s", path)
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _submit(self, kind: str) -> None:
        body = self._read_body()
        params, priority, timeout = _validate_submission(kind, body)
        outcome, record = self.service.submit(kind, params, priority, timeout)
        doc = {"job": record.to_json()} if record is not None else {}
        if outcome == "accepted":
            self._send_json(202, {"id": record.id, "status": record.status, **doc})
        elif outcome == "coalesced":
            self._send_json(
                200,
                {"id": record.id, "status": record.status, "coalesced": True, **doc},
            )
        elif outcome == "queue_full":
            retry_after = self.service.scheduler.retry_after_hint()
            self._send_json(
                429,
                {"error": "verification queue is full", "retry_after": retry_after},
                headers={"Retry-After": str(retry_after)},
            )
        else:  # draining
            self._send_json(
                503,
                {"error": "service is draining and no longer accepts work"},
                headers={"Retry-After": "30"},
            )

    def _get_job(self, job_id: str, query: Dict) -> None:
        wait = 0.0
        if "wait" in query:
            try:
                wait = min(float(query["wait"][0]), 300.0)
            except (TypeError, ValueError):
                raise RequestError(400, f"invalid wait value {query['wait'][0]!r}")
        if wait > 0:
            record = self.service.store.wait(job_id, wait)
        else:
            record = self.service.store.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown job id {job_id!r}"})
        else:
            self._send_json(200, record.to_json())


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: "VerificationService"):
        self.service = service
        super().__init__(address, _Handler)


class VerificationService:
    """The daemon: HTTP server + bounded queue + scheduler + job store."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = JobStore(retain=self.config.retain)
        self.queue = BoundedJobQueue(self.config.queue_capacity)
        self.scheduler = Scheduler(
            self.queue,
            self.store,
            workers=self.config.workers,
            cache_dir=self.config.cache_dir,
            seed=self.config.seed,
            cost_model_path=self.config.cost_model,
            dispatch=self.config.dispatch,
        )
        self._httpd: Optional[_Server] = None
        self._http_thread: Optional[threading.Thread] = None
        self._started = time.time()
        self._accepting = True
        self._stop = threading.Event()
        self._previous_collector = None
        self._recorder = None
        self._admission = threading.Lock()

    # -- state ---------------------------------------------------------------

    @property
    def accepting(self) -> bool:
        return self._accepting and not self._stop.is_set()

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("service is not started")
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    # -- admission -----------------------------------------------------------

    def submit(
        self,
        kind: str,
        params: Dict,
        priority: int = 5,
        timeout: Optional[float] = None,
    ) -> Tuple[str, Optional[JobRecord]]:
        """Admit one job. Returns ``(outcome, record)`` where outcome is
        ``accepted`` | ``coalesced`` | ``queue_full`` | ``draining``."""
        metrics.counter_add(metrics.SERVICE_REQUESTS, 1)
        if not self.accepting:
            metrics.counter_add(metrics.SERVICE_REQUESTS_REJECTED, 1)
            return "draining", None

        key = request_key(kind, params)
        with self._admission:
            existing = self.store.find_inflight(key)
            if existing is not None:
                self.store.note_coalesced(existing)
                metrics.counter_add(metrics.SERVICE_REQUESTS_DEDUPLICATED, 1)
                return "coalesced", existing

            record = JobRecord(
                kind=kind,
                params=params,
                request_key=key,
                priority=priority,
                timeout=timeout,
            )
            self.store.add(record)
            try:
                self.queue.put(record, priority=priority)
            except QueueFull:
                self.store.remove(record.id)
                metrics.counter_add(metrics.SERVICE_REQUESTS_REJECTED, 1)
                return "queue_full", None
            except QueueClosed:
                self.store.remove(record.id)
                metrics.counter_add(metrics.SERVICE_REQUESTS_REJECTED, 1)
                return "draining", None
        metrics.gauge_max(metrics.SERVICE_QUEUE_DEPTH_PEAK, self.queue.peak_depth)
        self.scheduler.warm_for_params(params)
        return "accepted", record

    # -- introspection -------------------------------------------------------

    def health(self) -> Dict:
        doc = {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(time.time() - self._started, 1),
            "accepting": self.accepting,
            "workers": self.scheduler.alive_workers,
            "dispatch": self.config.dispatch,
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "jobs": self.store.counts(),
            "inflight_abstractions": self.scheduler.inflight.in_flight(),
        }
        if self.config.shard_of:
            doc["shard"] = self.config.shard_of
        return doc

    def render_metrics(self) -> str:
        collector = obs.active_collector()
        snapshot = collector.snapshot() if collector is not None else {}
        counts = self.store.counts()
        extra = {
            "service.queue_depth": self.queue.depth(),
            "service.queue_capacity": self.queue.capacity,
            "service.uptime_seconds": round(time.time() - self._started, 1),
            "service.workers_alive": self.scheduler.alive_workers,
            "service.jobs_queued": counts.get("queued", 0),
            "service.jobs_running": counts.get("running", 0),
        }
        if self._recorder is not None:
            extra["trace.buffered_events"] = self._recorder.buffered()
        body = render_prometheus(snapshot, extra_gauges=extra)
        # Info-style metric: which reduction kernel path this process runs
        # (REPRO_BATCH_KERNELS). Labelled, so it rides outside the flat
        # counter/gauge maps render_prometheus consumes.
        body += (
            "# TYPE repro_kernel_info gauge\n"
            f'repro_kernel_info{{path="{kernels.active_kernel()}"}} 1\n'
        )
        if self.config.shard_of:
            body += (
                "# TYPE repro_shard_info gauge\n"
                f'repro_shard_info{{shard="{self.config.shard_of}"}} 1\n'
            )
        return body

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start workers and the HTTP thread; returns (host, port)."""
        self._previous_collector = obs.active_collector()
        obs.enable(obs.TraceCollector(max_spans=self.config.max_spans))
        if self.config.trace_ring > 0 and obs.redtrace.active_writer() is None:
            # Bounded flight recorder: keeps trace.* metrics live on
            # /metrics for the daemon's lifetime without unbounded memory.
            self._recorder = obs.redtrace.start_recording(
                op="service",
                params={"workers": self.config.workers},
                ring=True,
                max_events=self.config.trace_ring,
            )
        if self.config.prewarm:
            warmed = self.scheduler.prewarm(self.config.prewarm)
            logger.info("prewarmed GF tables for %d field(s)", warmed)
        self.scheduler.start()
        self._httpd = _Server((self.config.host, self.config.port), self)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="repro-service-http",
            daemon=True,
        )
        self._http_thread.start()
        host, port = self.address
        if self.config.port_file:
            with open(self.config.port_file, "w") as handle:
                handle.write(f"{host}:{port}\n")
        logger.info(
            "repro %s serving on %s:%d (%d workers, queue %d)",
            __version__, host, port, self.config.workers,
            self.config.queue_capacity,
        )
        return host, port

    def stop(self) -> int:
        """Graceful drain: stop admission, finish work, stop HTTP.

        Returns the number of jobs cancelled undone. Idempotent.
        """
        if self._stop.is_set():
            return 0
        self._accepting = False
        self._stop.set()
        logger.info("drain: admission stopped, finishing queued work")
        cancelled = self.scheduler.drain(timeout=self.config.drain_timeout)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=5.0)
        if self._recorder is not None:
            obs.redtrace.stop_recording()
            self._recorder = None
        obs.disable()
        if self._previous_collector is not None:
            obs.enable(self._previous_collector)
        logger.info("drain complete (%d job(s) cancelled)", cancelled)
        return cancelled

    def run_until_signal(self) -> int:
        """Block until SIGTERM/SIGINT, then drain. Returns an exit status."""
        def _handle(signum, frame):  # noqa: ARG001 — signal API
            logger.info("received %s, draining", signal.Signals(signum).name)
            self._accepting = False
            self._stop.set()

        previous = {
            sig: signal.signal(sig, _handle)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self._stop.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        self._stop.clear()  # let stop() run its drain exactly once
        self.stop()
        return 0


def serve(config: ServiceConfig) -> int:
    """Boot a service and run it until signalled (the ``repro serve`` body)."""
    service = VerificationService(config)
    try:
        service.start()
    except (OSError, socket.error) as exc:
        logger.error("cannot bind %s:%d: %s", config.host, config.port, exc)
        return 2
    return service.run_until_signal()
