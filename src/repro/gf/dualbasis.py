"""Dual bases and bit-coordinate polynomials over F_{2^k}.

The standard basis of F_{2^k} over F2 is ``{1, alpha, ..., alpha^{k-1}}``.
Its *trace-dual* basis ``{beta_0, ..., beta_{k-1}}`` satisfies
``Tr(alpha^i * beta_j) = delta_ij``, which makes each bit of a field element
recoverable algebraically::

    A = a_0 + a_1 alpha + ... + a_{k-1} alpha^{k-1}
    a_i = Tr(beta_i * A) = sum_j (beta_i)^{2^j} * A^{2^j}

so every coordinate ``a_i`` is a *linearized polynomial* in ``A``. The
abstraction engine's Case-2 path uses these coordinate polynomials to
eliminate leftover primary-input bits from a remainder — an algebraic
substitution whose result coincides with the paper's Case-2 Gröbner basis
computation by the uniqueness of the canonical representation (Cor. 4.1).
"""

from __future__ import annotations

from typing import List

from .field import GF2m

__all__ = ["dual_basis", "coordinate_coefficients"]


def _invert_f2_matrix(rows: List[int], k: int) -> List[int]:
    """Invert a k x k matrix over F2 (row ``i`` is a bitmask; bit ``j`` =
    entry ``(i, j)``). Raises on singular matrices."""
    aug = [rows[i] | (1 << (k + i)) for i in range(k)]
    for col in range(k):
        pivot = next(
            (r for r in range(col, k) if (aug[r] >> col) & 1), None
        )
        if pivot is None:
            raise ValueError("matrix is singular over F2")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for r in range(k):
            if r != col and (aug[r] >> col) & 1:
                aug[r] ^= aug[col]
    return [aug[i] >> k for i in range(k)]


_DUAL_CACHE: dict = {}


def dual_basis(field: GF2m) -> List[int]:
    """The trace-dual basis of the polynomial basis ``{alpha^i}``.

    Returns residues ``beta_0 .. beta_{k-1}`` with
    ``Tr(alpha^i * beta_j) = 1`` iff ``i == j``. Cached per field: the
    Case-2 path queries one coordinate at a time and the Gram-matrix
    inversion is O(k^3).
    """
    cached = _DUAL_CACHE.get(field)
    if cached is not None:
        return list(cached)
    k = field.k
    powers = [field.pow(field.alpha, i) for i in range(k)]
    gram = []
    for i in range(k):
        row = 0
        for j in range(k):
            if field.trace(field.mul(powers[i], powers[j])):
                row |= 1 << j
        gram.append(row)
    inverse = _invert_f2_matrix(gram, k)
    # beta_j = sum_i inverse[i][j] * alpha^i
    betas = []
    for j in range(k):
        beta = 0
        for i in range(k):
            if (inverse[i] >> j) & 1:
                beta ^= powers[i]
        betas.append(beta)
    _DUAL_CACHE[field] = tuple(betas)
    return betas


def coordinate_coefficients(field: GF2m, bit: int) -> List[int]:
    """Coefficients ``c_j`` with ``a_bit = sum_j c_j * A^(2^j)``.

    ``c_j = (beta_bit)^(2^j)`` where ``beta`` is the dual basis element; the
    returned list has length ``k`` (index ``j`` multiplies ``A^(2^j)``).
    """
    if not 0 <= bit < field.k:
        raise ValueError(f"bit index {bit} out of range for F_2^{field.k}")
    beta = dual_basis(field)[bit]
    coeffs = []
    value = beta
    for _ in range(field.k):
        coeffs.append(value)
        value = field.square(value)
    return coeffs
