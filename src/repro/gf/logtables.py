"""Lookup tables that accelerate F_{2^k} arithmetic (``REPRO_GF_TABLES``).

Two table families, both built lazily on first use and shared process-wide
through a ``(k, modulus)``-keyed cache so every :class:`~repro.gf.field.GF2m`
instance of the same field reuses them:

- **log/antilog tables** (``k <= MAX_LOG_K``): discrete logarithms with
  respect to a generator of the multiplicative group turn ``mul``, ``div``,
  ``inv``, ``pow`` and ``square`` into O(1) lookups. The antilog table is
  doubled so the common index arithmetic never needs a modulo. Both tables
  are stored as ``array('I')``: every entry fits 32 bits for ``k <= 16``,
  which cuts resident size ~8x against a list of boxed ints at identical
  measured lookup cost.
- **windowed-reduction tables** (``k > MAX_LOG_K``): a full log table is
  infeasible, but the modular reduction after a carry-less multiply can be
  done byte-at-a-time with 256-entry tables of ``byte * x^(k+8i) mod P`` —
  O(k/8) XORs instead of the bit-by-bit long division of ``poly2.mod``.
  Rows are ``array('I')`` while residues fit a machine word (``k <= 32``);
  wider fields keep plain lists — their entries are arbitrary-precision
  ints that a flat array cannot hold, and re-boxing large ints on every
  lookup measures slower than reusing the list's existing objects.

Setting ``REPRO_GF_TABLES=0`` in the environment disables both families;
every operation then runs on the pure :mod:`repro.gf.poly2` reference path
(the correctness oracle the differential tests compare against).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, List, Sequence, Tuple

from . import poly2

__all__ = [
    "MAX_LOG_K",
    "tables_enabled",
    "log_tables",
    "reduction_table",
    "table_builds",
    "warm",
]

#: Largest k for which full log/antilog tables are built (2^k entries each).
MAX_LOG_K = 16

#: Widest field whose reduction-table rows are packed ``array('I')`` — every
#: residue of F_2^32 fits one unsigned 32-bit slot.
MAX_PACKED_ROW_K = 32

_log_cache: Dict[Tuple[int, int], Tuple["array", "array"]] = {}
_reduction_cache: Dict[Tuple[int, int], List[Sequence[int]]] = {}

#: Count of actual table constructions in this process (cache misses).
#: Worker pools warm their tables once in the initializer and then assert
#: this counter stays flat across the run — a rebuild mid-run means a field
#: reached arithmetic before the warm-up covered it.
_builds = 0


def table_builds() -> int:
    """Number of table constructions performed by this process so far."""
    return _builds


def warm(k: int, modulus: int) -> None:
    """Pre-build the table family arithmetic on ``(k, modulus)`` will use.

    Called from pool initializers so table construction happens once per
    worker, before any timed work; subsequent :func:`log_tables` /
    :func:`reduction_table` calls for the same field are cache hits and do
    not move :func:`table_builds`. A no-op when ``REPRO_GF_TABLES=0``.
    """
    if not tables_enabled():
        return
    if k <= MAX_LOG_K:
        log_tables(k, modulus)
    else:
        reduction_table(k, modulus)


def tables_enabled() -> bool:
    """Honour the ``REPRO_GF_TABLES`` switch (default: enabled)."""
    return os.environ.get("REPRO_GF_TABLES", "1") != "0"


def _try_generator(g: int, k: int, modulus: int) -> "List[int] | None":
    """Antilog table for candidate generator ``g``, or None if not primitive.

    The table has length ``2 * span`` (``span = 2^k - 1``) with
    ``exp[i] = g^(i mod span)``, so ``exp[la + lb]`` and
    ``exp[la - lb + span]`` need no index reduction.
    """
    order = 1 << k
    span = order - 1
    exp = [1] * (2 * span)
    value = 1
    if g == 0b10:
        # Multiplication by x is a shift and one conditional reduction.
        for i in range(1, span):
            value <<= 1
            if value & order:
                value ^= modulus
            if value == 1:
                return None  # cycle shorter than 2^k - 1: not primitive
            exp[i] = value
    else:
        for i in range(1, span):
            value = poly2.mulmod(value, g, modulus)
            if value == 1:
                return None
            exp[i] = value
    exp[span : 2 * span] = exp[:span]
    return exp


def log_tables(k: int, modulus: int) -> Tuple["array", "array"]:
    """``(exp, log)`` tables for ``F_2^k = F2[x]/(modulus)``, as ``array('I')``.

    ``exp`` is the doubled antilog table from :func:`_try_generator`;
    ``log[a]`` is the discrete logarithm of the nonzero residue ``a``.
    ``log[0]`` is a poison entry (``2 * span``, past the end of ``exp``)
    that keeps the table dense but must never be read — callers branch on
    zero first, and the ``exp[log[a] + log[b]]`` pattern raises IndexError
    if one slips through.
    """
    global _builds
    key = (k, modulus)
    cached = _log_cache.get(key)
    if cached is not None:
        return cached
    _builds += 1
    span = (1 << k) - 1
    if span == 1:  # F_2: the multiplicative group is trivial
        tables = (array("I", [1, 1]), array("I", [2, 0]))
        _log_cache[key] = tables
        return tables
    exp = None
    # alpha = x is primitive for every modulus in the standard tables; the
    # search only continues past it for exotic user-supplied polynomials.
    for g in range(2, 1 << k):
        exp = _try_generator(g, k, modulus)
        if exp is not None:
            break
    if exp is None:  # pragma: no cover - every field has a generator
        raise RuntimeError(f"no generator found for F_2^{k}")
    log = [2 * span] * (span + 1)
    for i in range(span):
        log[exp[i]] = i
    tables = (array("I", exp), array("I", log))
    _log_cache[key] = tables
    return tables


def reduction_table(k: int, modulus: int) -> List[Sequence[int]]:
    """Byte-window reduction tables for products of two degree-<k residues.

    ``table[i][byte] == (byte << (k + 8*i)) mod modulus`` for every byte
    position ``i`` of the product's high part (degree ``k .. 2k-2``).
    Built incrementally from ``x^(k+j) mod P`` recurrences in O(k + 256*k/8)
    word operations — no per-entry long division. Rows are packed
    ``array('I')`` up to ``k == MAX_PACKED_ROW_K`` and plain lists beyond
    (see the module docstring for the measured rationale).
    """
    global _builds
    key = (k, modulus)
    cached = _reduction_cache.get(key)
    if cached is not None:
        return cached
    _builds += 1
    order = 1 << k
    mask = order - 1
    low = modulus & mask  # x^k ≡ low  (mod P)
    # residues[j] = x^(k+j) mod P for the k-1 possible high-part bits
    residues = [0] * (k - 1) if k > 1 else [0]
    residues[0] = low
    for j in range(1, len(residues)):
        r = residues[j - 1] << 1
        if r & order:
            r = (r & mask) ^ low
        residues[j] = r
    positions = (len(residues) + 7) // 8
    pack_rows = k <= MAX_PACKED_ROW_K
    table: List[Sequence[int]] = []
    for i in range(positions):
        rows = [0] * 256
        base = 8 * i
        limit = min(8, len(residues) - base)
        for byte in range(1, 256):
            lowbit = byte & -byte
            bit = lowbit.bit_length() - 1
            if bit >= limit:
                rows[byte] = rows[byte ^ lowbit]
            else:
                rows[byte] = rows[byte ^ lowbit] ^ residues[base + bit]
        table.append(array("I", rows) if pack_rows else rows)
    _reduction_cache[key] = table
    return table
