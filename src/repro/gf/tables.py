"""Standard irreducible polynomials for binary extension fields.

The NIST FIPS 186 curves over binary fields fix the reduction polynomials
used in this table; the small degrees carry the conventional low-weight
choices (also the ones :func:`repro.gf.irreducible.find_irreducible`
discovers). ``nist_polynomial`` is the lookup the rest of the library uses
when a caller does not supply ``P(x)`` explicitly.
"""

from __future__ import annotations

from typing import Dict

from . import poly2
from .irreducible import find_irreducible

__all__ = ["NIST_POLYNOMIALS", "STANDARD_POLYNOMIALS", "nist_polynomial"]


def _poly(*exponents: int) -> int:
    return poly2.from_exponents(exponents)


#: Reduction polynomials fixed by NIST FIPS 186 for binary ECC fields.
NIST_POLYNOMIALS: Dict[int, int] = {
    163: _poly(163, 7, 6, 3, 0),
    233: _poly(233, 74, 0),
    283: _poly(283, 12, 7, 5, 0),
    409: _poly(409, 87, 0),
    571: _poly(571, 10, 5, 2, 0),
}

#: Conventional low-weight irreducible polynomials for common small degrees.
STANDARD_POLYNOMIALS: Dict[int, int] = {
    1: _poly(1, 0),  # x + 1: F2 itself represented as degree-1 quotient
    2: _poly(2, 1, 0),
    3: _poly(3, 1, 0),
    4: _poly(4, 1, 0),
    5: _poly(5, 2, 0),
    6: _poly(6, 1, 0),
    7: _poly(7, 1, 0),
    8: _poly(8, 4, 3, 1, 0),  # the AES polynomial
    9: _poly(9, 1, 0),
    10: _poly(10, 3, 0),
    11: _poly(11, 2, 0),
    12: _poly(12, 3, 0),
    16: _poly(16, 5, 3, 1, 0),
    24: _poly(24, 4, 3, 1, 0),
    32: _poly(32, 7, 3, 2, 0),
    48: _poly(48, 5, 3, 2, 0),
    64: _poly(64, 4, 3, 1, 0),
    96: _poly(96, 10, 9, 6, 0),
    128: _poly(128, 7, 2, 1, 0),
}


def nist_polynomial(k: int) -> int:
    """The standard irreducible polynomial of degree ``k``.

    Prefers the NIST ECC polynomials, then the conventional small-degree
    table, and finally falls back to a lowest-weight irreducible search so
    any ``k >= 1`` yields a valid field construction.
    """
    if k in NIST_POLYNOMIALS:
        return NIST_POLYNOMIALS[k]
    if k in STANDARD_POLYNOMIALS:
        return STANDARD_POLYNOMIALS[k]
    return find_irreducible(k)
