"""Arithmetic in F2[x]: polynomials over GF(2) represented as Python ints.

Bit ``i`` of the integer is the coefficient of ``x**i``, so the zero
polynomial is ``0``, ``x`` is ``0b10`` and ``x**3 + x + 1`` is ``0b1011``.
Python's arbitrary-precision integers make this representation compact and
fast: addition is XOR, multiplication is a carry-less (XOR-accumulating)
shift-and-add, and reduction is long division driven by bit lengths.

These routines are the foundation for constructing binary extension fields
``F_{2^k} = F2[x] / (P(x))`` in :mod:`repro.gf.field`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = [
    "degree",
    "from_exponents",
    "to_exponents",
    "to_string",
    "clmul",
    "mod",
    "divmod2",
    "mulmod",
    "powmod",
    "gcd",
    "ext_gcd",
    "invmod",
    "square",
    "derivative",
    "evaluate",
]


def degree(poly: int) -> int:
    """Degree of ``poly``; the zero polynomial has degree -1 by convention."""
    if poly < 0:
        raise ValueError("polynomials over F2 are encoded as non-negative ints")
    return poly.bit_length() - 1


def from_exponents(exponents: Iterable[int]) -> int:
    """Build a polynomial from an iterable of exponents.

    Repeated exponents cancel in characteristic 2, matching the algebra:
    ``from_exponents([3, 1, 1, 0]) == x**3 + 1``.
    """
    poly = 0
    for e in exponents:
        if e < 0:
            raise ValueError(f"negative exponent {e}")
        poly ^= 1 << e
    return poly


def to_exponents(poly: int) -> List[int]:
    """Exponents with nonzero coefficients, in decreasing order."""
    exps = []
    while poly:
        d = degree(poly)
        exps.append(d)
        poly ^= 1 << d
    return exps


def to_string(poly: int, var: str = "x") -> str:
    """Human-readable form, e.g. ``x^3 + x + 1``."""
    if poly == 0:
        return "0"
    parts = []
    for e in to_exponents(poly):
        if e == 0:
            parts.append("1")
        elif e == 1:
            parts.append(var)
        else:
            parts.append(f"{var}^{e}")
    return " + ".join(parts)


def clmul(a: int, b: int) -> int:
    """Carry-less product of two F2[x] polynomials."""
    if a < 0 or b < 0:
        raise ValueError("polynomials over F2 are encoded as non-negative ints")
    # Iterate over the sparser operand's set bits.
    if a.bit_count() > b.bit_count():
        a, b = b, a
    result = 0
    while a:
        low = a & -a
        result ^= b << (low.bit_length() - 1)
        a ^= low
    return result


def divmod2(a: int, b: int) -> Tuple[int, int]:
    """Quotient and remainder of ``a / b`` in F2[x]."""
    if b == 0:
        raise ZeroDivisionError("division by the zero polynomial")
    deg_b = degree(b)
    quotient = 0
    while True:
        shift = degree(a) - deg_b
        if shift < 0:
            return quotient, a
        quotient ^= 1 << shift
        a ^= b << shift


def mod(a: int, b: int) -> int:
    """Remainder of ``a`` modulo ``b`` in F2[x]."""
    if b == 0:
        raise ZeroDivisionError("reduction by the zero polynomial")
    deg_b = degree(b)
    while True:
        shift = degree(a) - deg_b
        if shift < 0:
            return a
        a ^= b << shift


def mulmod(a: int, b: int, modulus: int) -> int:
    """``a * b mod modulus`` in F2[x]."""
    return mod(clmul(a, b), modulus)


def square(a: int) -> int:
    """Square in F2[x]: interleave zero bits (the Frobenius map on coefficients)."""
    result = 0
    i = 0
    while a:
        if a & 1:
            result |= 1 << (2 * i)
        a >>= 1
        i += 1
    return result


def powmod(a: int, exponent: int, modulus: int) -> int:
    """``a**exponent mod modulus`` by square-and-multiply."""
    if exponent < 0:
        raise ValueError("negative exponents require invmod")
    result = mod(1, modulus)
    a = mod(a, modulus)
    while exponent:
        if exponent & 1:
            result = mulmod(result, a, modulus)
        a = mod(square(a), modulus)
        exponent >>= 1
    return result


def gcd(a: int, b: int) -> int:
    """Greatest common divisor in F2[x] (monic by construction)."""
    while b:
        a, b = b, mod(a, b)
    return a


def ext_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, s, t)`` with ``s*a + t*b = g``."""
    r0, r1 = a, b
    s0, s1 = 1, 0
    t0, t1 = 0, 1
    while r1:
        q, r = divmod2(r0, r1)
        r0, r1 = r1, r
        s0, s1 = s1, s0 ^ clmul(q, s1)
        t0, t1 = t1, t0 ^ clmul(q, t1)
    return r0, s0, t0


def invmod(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus`` in F2[x]."""
    a = mod(a, modulus)
    if a == 0:
        raise ZeroDivisionError("zero has no inverse")
    g, s, _ = ext_gcd(a, modulus)
    if g != 1:
        raise ValueError(
            f"{to_string(a)} is not invertible modulo {to_string(modulus)}"
        )
    return mod(s, modulus)


def derivative(poly: int) -> int:
    """Formal derivative in F2[x]: even-exponent terms vanish."""
    result = 0
    e = 1
    poly >>= 1
    while poly:
        if poly & 1 and e & 1:
            result |= 1 << (e - 1)
        poly >>= 1
        e += 1
    return result


def evaluate(poly: int, point: int) -> int:
    """Evaluate at a point of F2 (0 or 1)."""
    if point == 0:
        return poly & 1
    if point == 1:
        return poly.bit_count() & 1
    raise ValueError("evaluation point must be 0 or 1 over F2")
