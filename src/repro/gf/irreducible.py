"""Irreducibility and primitivity of polynomials over F2, plus search.

Field construction needs an irreducible ``P(x)`` of degree ``k``; ECC
standards additionally pick *primitive* or at least fixed low-weight
irreducible polynomials (trinomials/pentanomials). This module provides:

- :func:`is_irreducible` — Rabin's test,
- :func:`is_primitive` — order test via factoring ``2^k - 1``,
- :func:`find_irreducible` — lowest-weight irreducible of a given degree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from . import poly2

__all__ = [
    "is_irreducible",
    "is_primitive",
    "find_irreducible",
    "find_primitive",
    "prime_factors",
]


def _distinct_prime_divisors(n: int) -> List[int]:
    """Distinct prime divisors of ``n`` by trial division with Pollard fallback."""
    factors = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.add(n)
    return sorted(factors)


def prime_factors(n: int) -> Dict[int, int]:
    """Full prime factorisation ``{prime: multiplicity}`` by trial division."""
    factors: Dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test over F2.

    ``poly`` of degree ``k`` is irreducible iff ``x^(2^k) == x (mod poly)``
    and ``gcd(x^(2^(k/q)) - x, poly) == 1`` for every prime ``q | k``.
    """
    k = poly2.degree(poly)
    if k <= 0:
        return False
    if k == 1:
        return True
    if poly & 1 == 0:  # divisible by x
        return False
    x = 0b10
    for q in _distinct_prime_divisors(k):
        # h = x^(2^(k/q)) mod poly, computed by repeated squaring of x.
        h = x
        for _ in range(k // q):
            h = poly2.mod(poly2.square(h), poly)
        if poly2.gcd(h ^ x, poly) != 1:
            return False
    h = x
    for _ in range(k):
        h = poly2.mod(poly2.square(h), poly)
    return h == x


def is_primitive(poly: int) -> bool:
    """True when ``poly`` is primitive: its root generates ``F_{2^k}^*``.

    Requires irreducibility plus ``ord(x) = 2^k - 1`` modulo ``poly``, checked
    via ``x^((2^k-1)/q) != 1`` for every prime ``q | 2^k - 1``. Factoring
    ``2^k - 1`` by trial division keeps this practical for ``k`` up to ~64;
    the verification flow itself never requires primitivity, only
    irreducibility, so large NIST degrees skip this check.
    """
    if not is_irreducible(poly):
        return False
    k = poly2.degree(poly)
    order = (1 << k) - 1
    x = 0b10
    for q in _distinct_prime_divisors(order):
        if poly2.powmod(x, order // q, poly) == 1:
            return False
    return True


def _weight_candidates(k: int) -> Iterator[int]:
    """Candidate degree-``k`` polynomials in increasing weight order.

    Yields trinomials ``x^k + x^a + 1`` first, then pentanomials
    ``x^k + x^c + x^b + x^a + 1`` — the forms hardware standards use.
    """
    top = (1 << k) | 1
    for a in range(1, k):
        yield top | (1 << a)
    for c in range(3, k):
        for b in range(2, c):
            for a in range(1, b):
                yield top | (1 << c) | (1 << b) | (1 << a)


def find_irreducible(k: int) -> int:
    """Lowest-weight irreducible polynomial of degree ``k`` (k >= 1)."""
    if k < 1:
        raise ValueError("degree must be >= 1")
    if k == 1:
        return 0b10  # x itself (the only degree-1 irreducible aside from x+1)
    for candidate in _weight_candidates(k):
        if is_irreducible(candidate):
            return candidate
    raise RuntimeError(f"no low-weight irreducible of degree {k} found")


def find_primitive(k: int) -> int:
    """Lowest-weight *primitive* polynomial of degree ``k``."""
    if k < 2:
        raise ValueError("degree must be >= 2 for a primitive polynomial search")
    for candidate in _weight_candidates(k):
        if is_primitive(candidate):
            return candidate
    raise RuntimeError(f"no low-weight primitive polynomial of degree {k} found")
