"""Irreducibility and primitivity of polynomials over F2, plus search.

Field construction needs an irreducible ``P(x)`` of degree ``k``; ECC
standards additionally pick *primitive* or at least fixed low-weight
irreducible polynomials (trinomials/pentanomials). This module provides:

- :func:`is_irreducible` — Rabin's test,
- :func:`is_primitive` — order test via factoring ``2^k - 1``,
- :func:`find_irreducible` — lowest-weight irreducible of a given degree.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Iterator, List

from . import poly2

__all__ = [
    "count_irreducible",
    "is_irreducible",
    "is_primitive",
    "find_irreducible",
    "find_primitive",
    "irreducible_polynomials",
    "prime_factors",
]


def _distinct_prime_divisors(n: int) -> List[int]:
    """Distinct prime divisors of ``n`` by trial division with Pollard fallback."""
    factors = set()
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.add(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.add(n)
    return sorted(factors)


def prime_factors(n: int) -> Dict[int, int]:
    """Full prime factorisation ``{prime: multiplicity}`` by trial division."""
    factors: Dict[int, int] = {}
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors[d] = factors.get(d, 0) + 1
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors[n] = factors.get(n, 0) + 1
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test over F2.

    ``poly`` of degree ``k`` is irreducible iff ``x^(2^k) == x (mod poly)``
    and ``gcd(x^(2^(k/q)) - x, poly) == 1`` for every prime ``q | k``.
    """
    k = poly2.degree(poly)
    if k <= 0:
        return False
    if k == 1:
        return True
    if poly & 1 == 0:  # divisible by x
        return False
    x = 0b10
    for q in _distinct_prime_divisors(k):
        # h = x^(2^(k/q)) mod poly, computed by repeated squaring of x.
        h = x
        for _ in range(k // q):
            h = poly2.mod(poly2.square(h), poly)
        if poly2.gcd(h ^ x, poly) != 1:
            return False
    h = x
    for _ in range(k):
        h = poly2.mod(poly2.square(h), poly)
    return h == x


def is_primitive(poly: int) -> bool:
    """True when ``poly`` is primitive: its root generates ``F_{2^k}^*``.

    Requires irreducibility plus ``ord(x) = 2^k - 1`` modulo ``poly``, checked
    via ``x^((2^k-1)/q) != 1`` for every prime ``q | 2^k - 1``. Factoring
    ``2^k - 1`` by trial division keeps this practical for ``k`` up to ~64;
    the verification flow itself never requires primitivity, only
    irreducibility, so large NIST degrees skip this check.
    """
    if not is_irreducible(poly):
        return False
    k = poly2.degree(poly)
    order = (1 << k) - 1
    x = 0b10
    for q in _distinct_prime_divisors(order):
        if poly2.powmod(x, order // q, poly) == 1:
            return False
    return True


def _weight_candidates(k: int) -> Iterator[int]:
    """Candidate degree-``k`` polynomials in increasing weight order.

    Yields trinomials ``x^k + x^a + 1`` first, then pentanomials
    ``x^k + x^c + x^b + x^a + 1`` — the forms hardware standards use.
    """
    top = (1 << k) | 1
    for a in range(1, k):
        yield top | (1 << a)
    for c in range(3, k):
        for b in range(2, c):
            for a in range(1, b):
                yield top | (1 << c) | (1 << b) | (1 << a)


def _moebius(n: int) -> int:
    """The Möbius function µ(n)."""
    mu = 1
    for prime, exponent in prime_factors(n).items():
        del prime
        if exponent > 1:
            return 0
        mu = -mu
    return mu


def count_irreducible(m: int) -> int:
    """Number of monic irreducible degree-``m`` polynomials over F2.

    Gauss's necklace formula: ``(1/m) * sum_{d | m} mu(d) * 2^(m/d)``.
    Used by tests as the ground truth for :func:`irreducible_polynomials`.
    """
    if m < 1:
        raise ValueError("degree must be >= 1")
    total = 0
    for d in range(1, m + 1):
        if m % d == 0:
            total += _moebius(d) * (1 << (m // d))
    return total // m


def irreducible_polynomials(m: int) -> Iterator[int]:
    """All irreducible degree-``m`` polynomials, lowest weight first.

    Deterministic enumeration ordered by (weight, value): trinomials before
    pentanomials before heptanomials and so on, ascending integer encoding
    within each weight class. This is the candidate order the
    reverse-engineering sweep probes — hardware overwhelmingly uses the
    lowest-weight irreducible available (the paper's search heuristic), so
    the true ``P(x)`` of a real design surfaces within the first few
    candidates even for degrees whose full irreducible census is
    astronomically large.

    The generator is lazy per weight class; consuming it fully enumerates
    every irreducible of degree ``m`` (practical for small ``m`` only).
    """
    if m < 1:
        raise ValueError("degree must be >= 1")
    if m == 1:
        yield 0b10  # x
        yield 0b11  # x + 1
        return
    top = (1 << m) | 1  # x^m + ... + 1: any irreducible of degree >= 2
    # A polynomial with an even number of terms has 1 as a root, so only
    # odd weights >= 3 can be irreducible once the degree exceeds 1.
    for weight in range(3, m + 2, 2):
        candidates = [
            top | sum(1 << position for position in interior)
            for interior in combinations(range(1, m), weight - 2)
        ]
        for candidate in sorted(candidates):
            if is_irreducible(candidate):
                yield candidate


def find_irreducible(k: int) -> int:
    """Lowest-weight irreducible polynomial of degree ``k`` (k >= 1)."""
    if k < 1:
        raise ValueError("degree must be >= 1")
    if k == 1:
        return 0b10  # x itself (the only degree-1 irreducible aside from x+1)
    for candidate in _weight_candidates(k):
        if is_irreducible(candidate):
            return candidate
    raise RuntimeError(f"no low-weight irreducible of degree {k} found")


def find_primitive(k: int) -> int:
    """Lowest-weight *primitive* polynomial of degree ``k``."""
    if k < 2:
        raise ValueError("degree must be >= 2 for a primitive polynomial search")
    for candidate in _weight_candidates(k):
        if is_primitive(candidate):
            return candidate
    raise RuntimeError(f"no low-weight primitive polynomial of degree {k} found")
