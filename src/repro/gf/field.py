"""Binary extension fields F_{2^k} and their elements.

A field is constructed as ``F2[x] / (P(x))`` for an irreducible ``P`` of
degree ``k``. Elements are residues, encoded as ints whose bit ``i`` is the
coefficient of ``alpha^i`` (``alpha`` a root of ``P``); equivalently the
``k``-bit vector the hardware carries. Two interfaces are provided:

- the :class:`GF2m` field object exposes ``add``/``mul``/``inv``/... on raw
  ints — the fast path used throughout the algebra engine, where coefficient
  arithmetic dominates runtime;
- calling the field, ``field(value)``, wraps a residue in a
  :class:`GFElement` with operator overloading for ergonomic user code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from . import logtables, poly2
from .irreducible import is_irreducible
from .tables import nist_polynomial

__all__ = ["GF2m", "GFElement", "xor_accumulate"]


def xor_accumulate(
    acc: Dict[int, int], keys: Sequence[int], coeffs: Sequence[int]
) -> int:
    """XOR-merge parallel ``(key, coeff)`` sequences into ``acc`` in place.

    The characteristic-2 accumulation step shared by the batched reduction
    kernels: a present key is XOR-merged (and deleted when the coefficient
    cancels to zero), an absent key is inserted. Returns the net change in
    ``len(acc)`` so callers can batch their live-term accounting instead of
    adjusting a counter per element.
    """
    get = acc.get
    before = len(acc)
    for key, cc in zip(keys, coeffs):
        cur = get(key)
        if cur is None:
            acc[key] = cc
        else:
            merged = cur ^ cc
            if merged:
                acc[key] = merged
            else:
                del acc[key]
    return len(acc) - before


class GF2m:
    """The Galois field F_{2^k}, constructed from an irreducible ``P(x)``.

    Arithmetic runs on one of three paths, fastest available first:

    - ``k <= 16``: log/antilog lookup tables (O(1) ``mul``/``div``/``inv``);
    - ``k > 16``: carry-less multiply plus byte-windowed table reduction;
    - ``REPRO_GF_TABLES=0``: the pure :mod:`repro.gf.poly2` reference path.

    Tables are built lazily on the first operation that needs them and are
    shared between instances of the same ``(k, modulus)`` field.
    """

    __slots__ = ("k", "modulus", "order", "_mask", "_exp", "_log", "_red", "_tables_pending")

    def __init__(self, k: int, modulus: Optional[int] = None):
        if k < 1:
            raise ValueError("field degree k must be >= 1")
        if modulus is None:
            modulus = nist_polynomial(k)
        if poly2.degree(modulus) != k:
            raise ValueError(
                f"modulus has degree {poly2.degree(modulus)}, expected {k}"
            )
        if not is_irreducible(modulus):
            raise ValueError(
                f"modulus {poly2.to_string(modulus)} is not irreducible over F2"
            )
        self.k = k
        self.modulus = modulus
        self.order = 1 << k
        self._mask = self.order - 1
        self._exp: Optional[List[int]] = None
        self._log: Optional[List[int]] = None
        self._red: Optional[List[List[int]]] = None
        self._tables_pending = logtables.tables_enabled()

    # -- element construction ------------------------------------------------

    def __call__(self, value: int) -> "GFElement":
        return GFElement(self, self.reduce(value))

    def element_from_bits(self, bits: List[int]) -> int:
        """Pack a little-endian bit list (coefficient of ``alpha^i`` at index i)."""
        if len(bits) > self.k:
            raise ValueError(f"too many bits ({len(bits)}) for F_2^{self.k}")
        value = 0
        for i, b in enumerate(bits):
            if b not in (0, 1):
                raise ValueError(f"bit {i} is {b}, expected 0 or 1")
            value |= b << i
        return value

    def bits_of(self, value: int) -> List[int]:
        """Little-endian bit list of a residue, always length ``k``."""
        self._check(value)
        return [(value >> i) & 1 for i in range(self.k)]

    @property
    def alpha(self) -> int:
        """The residue of ``x``: a root of the field's modulus.

        For ``k == 1`` (modulus ``x + 1``) the residue of ``x`` is 1.
        """
        return self.reduce(0b10)

    def alpha_powers(self) -> List[int]:
        """``[alpha^0, ..., alpha^{k-1}]`` — the word-to-bit weights of Eqn. (1).

        ``x^i`` for ``i < k`` has degree below the modulus and is its own
        residue, so these are the unit bit patterns (``[1]`` for k == 1);
        centralised so hot paths skip ``k`` modular exponentiations.
        """
        return [1 << i for i in range(self.k)] if self.k > 1 else [1]

    def elements(self) -> Iterator[int]:
        """Iterate all ``2^k`` residues (use only for small fields)."""
        return iter(range(self.order))

    # -- raw-int arithmetic (fast path) --------------------------------------

    def _check(self, a: int) -> None:
        if not 0 <= a < self.order:
            raise ValueError(f"{a} is not a residue of F_2^{self.k}")

    def ensure_tables(self) -> None:
        """Build (or fetch from the process-wide cache) the lookup tables.

        Called lazily from the first arithmetic operation; safe to call
        eagerly before a hot loop to keep table construction out of timings.
        """
        self._tables_pending = False
        if not logtables.tables_enabled():
            return
        if self.k <= logtables.MAX_LOG_K:
            self._exp, self._log = logtables.log_tables(self.k, self.modulus)
        else:
            self._red = logtables.reduction_table(self.k, self.modulus)

    def _window_reduce(self, value: int) -> int:
        """Reduce a product of two residues (degree <= 2k-2) byte-at-a-time."""
        red = self._red
        low = value & self._mask
        high = value >> self.k
        i = 0
        while high:
            byte = high & 0xFF
            if byte:
                low ^= red[i][byte]
            high >>= 8
            i += 1
        return low

    def reduce(self, a: int) -> int:
        """Reduce an arbitrary F2[x] polynomial to its residue."""
        if 0 <= a < self.order:
            return a
        return poly2.mod(a, self.modulus)

    def add(self, a: int, b: int) -> int:
        """Field addition (== subtraction in characteristic 2)."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication: carry-less product reduced mod ``P(x)``."""
        if self._tables_pending:
            self.ensure_tables()
        exp = self._exp
        if exp is not None and 0 <= a < self.order and 0 <= b < self.order:
            if a and b:
                log = self._log
                return exp[log[a] + log[b]]
            return 0
        red = self._red
        if red is not None and 0 <= a < self.order and 0 <= b < self.order:
            # k > 16 fast path: carry-less multiply, then the byte-windowed
            # table reduction inlined — poly2.mod's bit-by-bit long division
            # never runs for in-range residues.
            product = poly2.clmul(a, b)
            if product < self.order:
                return product
            low = product & self._mask
            high = product >> self.k
            i = 0
            while high:
                byte = high & 0xFF
                if byte:
                    low ^= red[i][byte]
                high >>= 8
                i += 1
            return low
        product = poly2.clmul(a, b)
        if product < self.order:
            return product
        return poly2.mod(product, self.modulus)

    def _constant_window_tables(self, c: int) -> List[List[int]]:
        """256-entry tables of ``byte << 8i -> byte * x^(8i) * c mod P``.

        Together the tables evaluate ``v * c mod P`` as one XOR per byte of
        ``v``. Built by the same doubling recurrence as the reduction
        tables, so construction costs O(k + 256 * k/8) word ops and
        amortises over a :meth:`mul_vec` batch.
        """
        order = self.order
        mask = self._mask
        low_p = self.modulus & mask  # x^k ≡ low_p (mod P)
        tables: List[List[int]] = []
        r = c  # x^(8i + j) * c mod P, advanced by doubling
        for _ in range((self.k + 7) // 8):
            residues = []
            for _ in range(8):
                residues.append(r)
                r <<= 1
                if r & order:
                    r = (r & mask) ^ low_p
            rows = [0] * 256
            for byte in range(1, 256):
                lowbit = byte & -byte
                rows[byte] = rows[byte ^ lowbit] ^ residues[lowbit.bit_length() - 1]
            tables.append(rows)
        return tables

    def mul_vec(self, values: Iterable[int], c: int) -> List[int]:
        """Multiply every residue in ``values`` by the constant residue ``c``.

        Batched entry point for the reduction kernels, element-identical to
        ``[self.mul(v, c) for v in values]``: the table dispatch and the
        log lookup for ``c`` are hoisted out of the loop, and on wide
        fields a dense ``c`` over a large batch gets per-byte product
        tables (:meth:`_constant_window_tables`) so each element costs
        O(k/8) lookups instead of a carry-less multiply whose Python loop
        walks every set bit. Sparse constants — the alpha powers the
        word-relation division feeds in — stay on clmul, which already
        iterates only ``c``'s set bits.
        """
        if self._tables_pending:
            self.ensure_tables()
        values = list(values)
        if c == 0:
            return [0] * len(values)
        if c == 1:
            return values
        self._check(c)
        exp = self._exp
        if exp is not None:
            log = self._log
            lc = log[c]
            return [exp[log[v] + lc] if v else 0 for v in values]
        red = self._red
        if red is not None:
            if len(values) * c.bit_count() >= 2048:
                tables = self._constant_window_tables(c)
                out: List[int] = []
                append = out.append
                for v in values:
                    acc = 0
                    i = 0
                    while v:
                        byte = v & 0xFF
                        if byte:
                            acc ^= tables[i][byte]
                        v >>= 8
                        i += 1
                    append(acc)
                return out
            clmul = poly2.clmul
            order = self.order
            mask = self._mask
            k = self.k
            out = []
            append = out.append
            for v in values:
                product = clmul(v, c)
                if product < order:
                    append(product)
                    continue
                low = product & mask
                high = product >> k
                i = 0
                while high:
                    byte = high & 0xFF
                    if byte:
                        low ^= red[i][byte]
                    high >>= 8
                    i += 1
                append(low)
            return out
        mul = self.mul
        return [mul(v, c) for v in values]

    def square(self, a: int) -> int:
        if self._tables_pending:
            self.ensure_tables()
        exp = self._exp
        if exp is not None and 0 <= a < self.order:
            return exp[2 * self._log[a]] if a else 0
        squared = poly2.square(a)
        if squared < self.order:
            return squared
        if self._red is not None and a < self.order:
            return self._window_reduce(squared)
        return poly2.mod(squared, self.modulus)

    def inv(self, a: int) -> int:
        """Multiplicative inverse via log tables or extended Euclid in F2[x]."""
        if self._tables_pending:
            self.ensure_tables()
        exp = self._exp
        if exp is not None and 0 < a < self.order:
            return exp[self.order - 1 - self._log[a]]
        self._check(a)
        return poly2.invmod(a, self.modulus)

    def div(self, a: int, b: int) -> int:
        if self._tables_pending:
            self.ensure_tables()
        exp = self._exp
        if exp is not None and 0 <= a < self.order and 0 < b < self.order:
            if a == 0:
                return 0
            return exp[self._log[a] - self._log[b] + self.order - 1]
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """``a**exponent`` with negative exponents resolved through ``inv``."""
        if self._tables_pending:
            self.ensure_tables()
        exp = self._exp
        if exp is not None and 0 <= a < self.order:
            if a == 0:
                if exponent < 0:
                    raise ZeroDivisionError("zero has no inverse")
                return 1 if exponent == 0 else 0
            return exp[(self._log[a] * exponent) % (self.order - 1)]
        if exponent < 0:
            return poly2.powmod(self.inv(a), -exponent, self.modulus)
        return poly2.powmod(a, exponent, self.modulus)

    def frobenius(self, a: int, times: int = 1) -> int:
        """Apply the Frobenius automorphism ``a -> a^2`` ``times`` times."""
        for _ in range(times % self.k if self.k else 1):
            a = self.square(a)
        return a

    def trace(self, a: int) -> int:
        """Absolute trace ``Tr(a) = a + a^2 + ... + a^(2^(k-1))`` (0 or 1)."""
        acc = 0
        t = a
        for _ in range(self.k):
            acc ^= t
            t = self.square(t)
        return acc

    # -- identity / introspection --------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GF2m)
            and self.k == other.k
            and self.modulus == other.modulus
        )

    def __hash__(self) -> int:
        return hash((self.k, self.modulus))

    def __repr__(self) -> str:
        return f"GF2m(k={self.k}, P(x)={poly2.to_string(self.modulus)})"


class GFElement:
    """A residue of F_{2^k} with operator overloading.

    Thin wrapper over ``(field, int)``; arithmetic delegates to the field's
    raw-int routines. Mixed operations with plain ints treat the int as a
    residue of the same field.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: GF2m, value: int):
        field._check(value)
        self.field = field
        self.value = value

    def _coerce(self, other: object) -> Optional[int]:
        if isinstance(other, GFElement):
            if other.field != self.field:
                raise ValueError("elements belong to different fields")
            return other.value
        if isinstance(other, int):
            return self.field.reduce(other)
        return None

    def __add__(self, other: object) -> "GFElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return GFElement(self.field, self.value ^ v)

    __radd__ = __add__
    __sub__ = __add__  # characteristic 2: subtraction is addition
    __rsub__ = __add__

    def __mul__(self, other: object) -> "GFElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return GFElement(self.field, self.field.mul(self.value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "GFElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return GFElement(self.field, self.field.div(self.value, v))

    def __rtruediv__(self, other: object) -> "GFElement":
        v = self._coerce(other)
        if v is None:
            return NotImplemented
        return GFElement(self.field, self.field.div(v, self.value))

    def __pow__(self, exponent: int) -> "GFElement":
        return GFElement(self.field, self.field.pow(self.value, exponent))

    def __neg__(self) -> "GFElement":
        return self

    def inverse(self) -> "GFElement":
        return GFElement(self.field, self.field.inv(self.value))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GFElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == self.field.reduce(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"GFElement({self.value:#x} in F_2^{self.field.k})"

    def __str__(self) -> str:
        """Render as a polynomial in alpha, e.g. ``a^3 + a + 1``."""
        return poly2.to_string(self.value, var="a")
