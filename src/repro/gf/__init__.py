"""Galois field substrate: F2[x] arithmetic and binary extension fields."""

from . import poly2
from .dualbasis import coordinate_coefficients, dual_basis
from .field import GF2m, GFElement, xor_accumulate
from .irreducible import (
    count_irreducible,
    find_irreducible,
    find_primitive,
    irreducible_polynomials,
    is_irreducible,
    is_primitive,
)
from .tables import NIST_POLYNOMIALS, STANDARD_POLYNOMIALS, nist_polynomial

__all__ = [
    "poly2",
    "dual_basis",
    "coordinate_coefficients",
    "GF2m",
    "GFElement",
    "xor_accumulate",
    "count_irreducible",
    "is_irreducible",
    "is_primitive",
    "find_irreducible",
    "find_primitive",
    "irreducible_polynomials",
    "nist_polynomial",
    "NIST_POLYNOMIALS",
    "STANDARD_POLYNOMIALS",
]
