"""Combinational circuit container with word-level annotations.

A :class:`Circuit` is a DAG of gates over named nets. Primary inputs are
undriven nets; every other net is driven by exactly one gate. On top of the
bit-level netlist, *words* group bit nets into field operands: word ``A``
with bits ``[a0, a1, ..., a_{k-1}]`` denotes the element
``a0 + a1*alpha + ... + a_{k-1}*alpha^{k-1}`` of F_{2^k} — the Eqn. (1)
correspondence the abstraction engine relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .gates import Gate, GateType

__all__ = ["Circuit", "CircuitError", "FaninCone"]


@dataclass
class FaninCone:
    """The transitive fanin of one net: everything that can influence it.

    ``gates`` are in topological order (producers before consumers, the
    order :func:`Circuit.topological_order` would give the subcircuit) and
    ``inputs`` are the primary inputs feeding the cone, in the owning
    circuit's input order. Cones of different output bits may share gates —
    the slices overlap wherever logic has fanout across output bits.
    """

    root: str
    gates: List[Gate]
    inputs: List[str]

    def num_gates(self) -> int:
        return len(self.gates)

    def subcircuit(self, name: Optional[str] = None) -> "Circuit":
        """Materialise the cone as a standalone single-output circuit."""
        sub = Circuit(name or f"cone:{self.root}")
        sub.add_inputs(self.inputs)
        for gate in self.gates:
            sub.add_gate(gate.output, gate.gate_type, gate.inputs)
        sub.set_outputs([self.root])
        return sub


class CircuitError(ValueError):
    """Structural problem in a netlist (cycle, redefinition, dangling net)."""


class Circuit:
    """A gate-level combinational netlist with word annotations."""

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._inputs: List[str] = []
        self._input_set: set = set()
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}  # output net -> driving gate
        self.input_words: Dict[str, List[str]] = {}
        self.output_words: Dict[str, List[str]] = {}
        self._topo_cache: Optional[List[Gate]] = None
        # Packed parallel-abstraction context (repro.core.abstraction) —
        # invalidated alongside the topo cache on any structural edit.
        self._plane_cache = None
        self._levels_cache: Optional[Dict[str, int]] = None

    # -- construction ---------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self._input_set:
            raise CircuitError(f"duplicate primary input {net!r}")
        if net in self._gates:
            raise CircuitError(f"net {net!r} is already driven by a gate")
        self._inputs.append(net)
        self._input_set.add(net)
        self._topo_cache = None
        self._levels_cache = None
        self._plane_cache = None  # packed parallel-abstraction context
        return net

    def add_inputs(self, nets: Iterable[str]) -> List[str]:
        return [self.add_input(n) for n in nets]

    def add_gate(self, output: str, gate_type: GateType, inputs: Sequence[str]) -> str:
        """Add a gate driving ``output``; returns the output net name."""
        if output in self._gates:
            raise CircuitError(f"net {output!r} is driven twice")
        if output in self._input_set:
            raise CircuitError(f"net {output!r} is a primary input, cannot drive it")
        self._gates[output] = Gate(output, gate_type, tuple(inputs))
        self._topo_cache = None
        self._levels_cache = None
        self._plane_cache = None  # packed parallel-abstraction context
        return output

    def set_outputs(self, nets: Sequence[str]) -> None:
        for net in nets:
            if net not in self._gates and net not in self._input_set:
                raise CircuitError(f"output net {net!r} is not driven")
        self._outputs = list(nets)

    def add_input_word(self, word: str, bits: Sequence[str]) -> None:
        """Group existing nets into an input word (LSB first)."""
        for b in bits:
            if b not in self._input_set:
                raise CircuitError(f"word {word!r} bit {b!r} is not a primary input")
        self.input_words[word] = list(bits)

    def add_output_word(self, word: str, bits: Sequence[str]) -> None:
        """Group existing nets into an output word (LSB first)."""
        for b in bits:
            if b not in self._gates and b not in self._input_set:
                raise CircuitError(f"word {word!r} bit {b!r} is not driven")
        self.output_words[word] = list(bits)

    # -- convenience builders used by the generators ----------------------------

    _counter = 0

    def fresh_net(self, prefix: str = "n") -> str:
        """A net name not yet used in this circuit."""
        while True:
            Circuit._counter += 1
            candidate = f"{prefix}{Circuit._counter}"
            if candidate not in self._gates and candidate not in self._input_set:
                return candidate

    def AND(self, *inputs: str, out: Optional[str] = None) -> str:
        return self.add_gate(out or self.fresh_net("a"), GateType.AND, inputs)

    def XOR(self, *inputs: str, out: Optional[str] = None) -> str:
        return self.add_gate(out or self.fresh_net("x"), GateType.XOR, inputs)

    def OR(self, *inputs: str, out: Optional[str] = None) -> str:
        return self.add_gate(out or self.fresh_net("o"), GateType.OR, inputs)

    def NOT(self, input_net: str, out: Optional[str] = None) -> str:
        return self.add_gate(out or self.fresh_net("i"), GateType.NOT, (input_net,))

    def BUF(self, input_net: str, out: Optional[str] = None) -> str:
        return self.add_gate(out or self.fresh_net("b"), GateType.BUF, (input_net,))

    def CONST(self, value: int, out: Optional[str] = None) -> str:
        gate_type = GateType.CONST1 if value else GateType.CONST0
        return self.add_gate(out or self.fresh_net("c"), gate_type, ())

    def xor_tree(self, nets: Sequence[str], out: Optional[str] = None) -> str:
        """Balanced XOR reduction of ``nets`` built from 2-input gates."""
        if not nets:
            return self.CONST(0, out=out)
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                last_pair = len(level) <= 2
                nxt.append(
                    self.XOR(level[i], level[i + 1], out=out if last_pair else None)
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        if len(nets) == 1 and out is not None:
            return self.BUF(level[0], out=out)
        return level[0]

    # -- accessors --------------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        return list(self._outputs)

    @property
    def gates(self) -> List[Gate]:
        return list(self._gates.values())

    def gate_driving(self, net: str) -> Gate:
        try:
            return self._gates[net]
        except KeyError:
            raise CircuitError(f"net {net!r} is not driven by a gate") from None

    def is_input(self, net: str) -> bool:
        return net in self._input_set

    def is_driven(self, net: str) -> bool:
        return net in self._gates or net in self._input_set

    def num_gates(self) -> int:
        return len(self._gates)

    def nets(self) -> List[str]:
        return self._inputs + list(self._gates)

    def gate_counts(self) -> Dict[str, int]:
        """Gate-type histogram, e.g. ``{"and": 4, "xor": 3}``."""
        counts: Dict[str, int] = {}
        for gate in self._gates.values():
            counts[gate.gate_type.value] = counts.get(gate.gate_type.value, 0) + 1
        return counts

    # -- structural analysis -----------------------------------------------------

    def validate(self) -> None:
        """Check every gate input is driven and the netlist is acyclic."""
        for gate in self._gates.values():
            for net in gate.inputs:
                if not self.is_driven(net):
                    raise CircuitError(
                        f"gate {gate} reads undriven net {net!r}"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[Gate]:
        """Gates ordered inputs-to-outputs (Kahn's algorithm); raises on cycles."""
        if self._topo_cache is not None:
            return self._topo_cache
        # Fast path: the builders emit gates producer-before-consumer, so
        # insertion order is usually already topological — one superset
        # check per gate confirms it without building the Kahn structures.
        seen = set(self._input_set)
        ordered = True
        for out, gate in self._gates.items():
            if gate.inputs and not seen.issuperset(gate.inputs):
                ordered = False
                break
            seen.add(out)
        if ordered:
            self._topo_cache = order = list(self._gates.values())
            return order
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {}
        gates = self._gates
        for out, gate in gates.items():
            driven = [n for n in gate.inputs if n in gates]
            if len(driven) == 2:  # the common case, dedup without a set
                if driven[0] == driven[1]:
                    driven = driven[:1]
            elif len(driven) > 2:
                driven = list(dict.fromkeys(driven))
            indegree[out] = len(driven)
            for src in driven:
                dependents.setdefault(src, []).append(out)
        ready = [out for out, deg in indegree.items() if deg == 0]
        order: List[Gate] = []
        while ready:
            net = ready.pop()
            order.append(self._gates[net])
            for dep in dependents.get(net, ()):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self._gates):
            raise CircuitError(f"circuit {self.name!r} contains a combinational cycle")
        self._topo_cache = order
        return order

    def reverse_topological_levels(self) -> Dict[str, int]:
        """Level of each driven net counted from the outputs.

        Output-side gates get small levels, input-side gates large ones —
        exactly the variable ranking the Refined Abstraction Term Order
        (Definition 5.1) needs: a net's RATO position decreases with its
        distance from the primary outputs.

        Cached alongside the topological order (and invalidated at the same
        mutation points); callers must not mutate the returned dict.
        """
        if self._levels_cache is not None:
            return self._levels_cache
        gates = self._gates
        # Walk consumers before producers and push ``level + 1`` onto each
        # gate input — every consumer of a net is visited before the net's
        # own gate, so the pushed maximum is final by the time we read it.
        level: Dict[str, int] = {}
        level_get = level.get
        for gate in reversed(self.topological_order()):
            out = gate.output
            lv = level_get(out, 0)
            level[out] = lv
            lv1 = lv + 1
            for src in gate.inputs:
                if src in gates and level_get(src, 0) < lv1:
                    level[src] = lv1
        self._levels_cache = level
        return level

    def logic_depth(self) -> int:
        """Longest input-to-output gate path."""
        depth: Dict[str, int] = {}
        best = 0
        for gate in self.topological_order():
            d = 1 + max((depth.get(n, 0) for n in gate.inputs), default=0)
            depth[gate.output] = d
            best = max(best, d)
        return best

    def _cone_of(
        self,
        root: str,
        topo_pos: Dict[str, int],
        input_pos: Dict[str, int],
    ) -> FaninCone:
        gates = self._gates
        seen_gates: set = set()
        seen_inputs: set = set()
        stack = [root]
        while stack:
            net = stack.pop()
            gate = gates.get(net)
            if gate is None:
                if net not in self._input_set:
                    raise CircuitError(
                        f"cone of {root!r} reaches undriven net {net!r}"
                    )
                seen_inputs.add(net)
                continue
            if net in seen_gates:
                continue
            seen_gates.add(net)
            stack.extend(gate.inputs)
        cone_gates = [gates[n] for n in sorted(seen_gates, key=topo_pos.__getitem__)]
        cone_inputs = sorted(seen_inputs, key=input_pos.__getitem__)
        return FaninCone(root, cone_gates, cone_inputs)

    def fanin_cone(self, root: str) -> FaninCone:
        """Transitive-fanin cone of one net (the net itself may be an input)."""
        if root not in self._gates and root not in self._input_set:
            raise CircuitError(f"net {root!r} is not driven")
        topo_pos = {g.output: i for i, g in enumerate(self.topological_order())}
        input_pos = {n: i for i, n in enumerate(self._inputs)}
        return self._cone_of(root, topo_pos, input_pos)

    def output_cones(self, word: Optional[str] = None) -> List[FaninCone]:
        """Per-output-bit fanin cones — the unit of parallel abstraction.

        Each output bit ``z_i`` depends only on its transitive fanin, so the
        guided reduction decomposes into one independent problem per cone
        (cf. Yu & Ciesielski's parallel GF-multiplier verification). With
        ``word`` given, returns one cone per bit of that output word (LSB
        first, matching the word's bit order); otherwise one cone per
        primary output net. Cones may share gates: shared logic appears in
        every cone that reaches it.
        """
        if word is not None:
            try:
                roots = self.output_words[word]
            except KeyError:
                raise CircuitError(f"unknown output word {word!r}") from None
        else:
            roots = self._outputs
        topo_pos = {g.output: i for i, g in enumerate(self.topological_order())}
        input_pos = {n: i for i, n in enumerate(self._inputs)}
        for root in roots:
            if root not in self._gates and root not in self._input_set:
                raise CircuitError(f"output net {root!r} is not driven")
        return [self._cone_of(root, topo_pos, input_pos) for root in roots]

    # -- transformation ------------------------------------------------------------

    def clone(self, name: Optional[str] = None) -> "Circuit":
        other = Circuit(name or self.name)
        other._inputs = list(self._inputs)
        other._input_set = set(self._input_set)
        other._outputs = list(self._outputs)
        other._gates = dict(self._gates)
        other.input_words = {w: list(b) for w, b in self.input_words.items()}
        other.output_words = {w: list(b) for w, b in self.output_words.items()}
        return other

    def renamed(self, prefix: str) -> "Circuit":
        """Copy with every net prefixed — for instantiating a block twice."""

        def r(net: str) -> str:
            return f"{prefix}{net}"

        other = Circuit(f"{prefix}{self.name}")
        other.add_inputs(r(n) for n in self._inputs)
        for gate in self._gates.values():
            other.add_gate(r(gate.output), gate.gate_type, [r(n) for n in gate.inputs])
        other.set_outputs([r(n) for n in self._outputs])
        other.input_words = {w: [r(b) for b in bits] for w, bits in self.input_words.items()}
        other.output_words = {w: [r(b) for b in bits] for w, bits in self.output_words.items()}
        return other

    def replace_gate(self, output: str, gate_type: GateType, inputs: Sequence[str]) -> None:
        """Swap the gate driving ``output`` (used by bug injection)."""
        if output not in self._gates:
            raise CircuitError(f"net {output!r} is not driven by a gate")
        self._gates[output] = Gate(output, gate_type, tuple(inputs))
        self._topo_cache = None
        self._levels_cache = None
        self._plane_cache = None  # packed parallel-abstraction context

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"gates={len(self._gates)}, outputs={len(self._outputs)})"
        )
