"""Hierarchical designs: word-connected blocks of gate-level circuits.

Custom large-field datapaths (the paper's Montgomery multiplier, Fig. 1) are
built as interconnections of pre-designed blocks. A
:class:`HierarchicalCircuit` holds named *word nets* and :class:`Block`
instances whose gate-level circuits read and drive those words. The
verification flow abstracts each block to a word-level polynomial and
composes the results (:mod:`repro.core.composition`); for bit-level
baselines the hierarchy can also be flattened to a single netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .circuit import Circuit, CircuitError
from .simulate import simulate_words

__all__ = ["Block", "HierarchicalCircuit"]


@dataclass
class Block:
    """One instance of a design inside a hierarchy.

    ``circuit`` is either a gate-level :class:`Circuit` or a nested
    :class:`HierarchicalCircuit` (hierarchies are trees). ``input_bindings``
    maps each input word of the inner design to a hierarchy word net;
    ``output_bindings`` does the same for output words.
    """

    name: str
    circuit: object  # Circuit | HierarchicalCircuit
    input_bindings: Dict[str, str] = field(default_factory=dict)
    output_bindings: Dict[str, str] = field(default_factory=dict)

    @property
    def is_nested(self) -> bool:
        return isinstance(self.circuit, HierarchicalCircuit)

    def inner_input_words(self) -> List[str]:
        return list(self.circuit.input_words)

    def inner_output_words(self) -> List[str]:
        return list(self.circuit.output_words)

    def validate(self) -> None:
        missing_in = set(self.inner_input_words()) - set(self.input_bindings)
        if missing_in:
            raise CircuitError(f"block {self.name!r}: unbound input words {missing_in}")
        missing_out = set(self.inner_output_words()) - set(self.output_bindings)
        if missing_out:
            raise CircuitError(
                f"block {self.name!r}: unbound output words {missing_out}"
            )


class HierarchicalCircuit:
    """Word-level interconnection of gate-level blocks (acyclic)."""

    def __init__(self, name: str, k: int):
        self.name = name
        self.k = k
        self.input_words: List[str] = []
        self.output_words: List[str] = []
        self.blocks: List[Block] = []

    def add_input_word(self, word: str) -> str:
        if word in self.input_words:
            raise CircuitError(f"duplicate hierarchy input word {word!r}")
        self.input_words.append(word)
        return word

    def add_block(
        self,
        name: str,
        circuit: Circuit,
        inputs: Mapping[str, str],
        outputs: Mapping[str, str],
    ) -> Block:
        """Instantiate ``circuit`` with the given word bindings."""
        block = Block(name, circuit, dict(inputs), dict(outputs))
        block.validate()
        driven = self._driven_words()
        for word in block.output_bindings.values():
            if word in driven or word in self.input_words:
                raise CircuitError(f"hierarchy word {word!r} is driven twice")
        self.blocks.append(block)
        return block

    def set_output_words(self, words: Sequence[str]) -> None:
        driven = self._driven_words() | set(self.input_words)
        for word in words:
            if word not in driven:
                raise CircuitError(f"hierarchy output word {word!r} is not driven")
        self.output_words = list(words)

    def _driven_words(self) -> set:
        return {
            word for block in self.blocks for word in block.output_bindings.values()
        }

    def topological_blocks(self) -> List[Block]:
        """Blocks ordered so producers precede consumers; raises on cycles."""
        producer: Dict[str, Block] = {}
        for block in self.blocks:
            for word in block.output_bindings.values():
                producer[word] = block
        order: List[Block] = []
        state: Dict[str, int] = {}  # block name -> 0 visiting, 1 done

        def visit(block: Block) -> None:
            mark = state.get(block.name)
            if mark == 1:
                return
            if mark == 0:
                raise CircuitError(
                    f"hierarchy {self.name!r} has a cycle through block {block.name!r}"
                )
            state[block.name] = 0
            for word in block.input_bindings.values():
                if word in producer:
                    visit(producer[word])
                elif word not in self.input_words:
                    raise CircuitError(
                        f"block {block.name!r} reads undriven word {word!r}"
                    )
            state[block.name] = 1
            order.append(block)

        for block in self.blocks:
            visit(block)
        return order

    # -- evaluation -----------------------------------------------------------

    def simulate_words(
        self, word_values: Mapping[str, Sequence[int]]
    ) -> Dict[str, List[int]]:
        """Word-level simulation: run each block's netlist in dependency order."""
        lanes: Optional[int] = None
        values: Dict[str, List[int]] = {}
        for word in self.input_words:
            if word not in word_values:
                raise CircuitError(f"missing value for hierarchy input {word!r}")
            values[word] = list(word_values[word])
            if lanes is None:
                lanes = len(values[word])
            elif len(values[word]) != lanes:
                raise CircuitError("all input words need the same number of lanes")
        for block in self.topological_blocks():
            stimuli = {
                circ_word: values[hier_word]
                for circ_word, hier_word in block.input_bindings.items()
            }
            if block.is_nested:
                results = block.circuit.simulate_words(stimuli)
            else:
                results = simulate_words(block.circuit, stimuli)
            for circ_word, hier_word in block.output_bindings.items():
                values[hier_word] = results[circ_word]
        return {word: values[word] for word in self.output_words}

    # -- flattening -----------------------------------------------------------

    def flatten(self, name: Optional[str] = None) -> Circuit:
        """Inline every block into a single gate-level netlist.

        Hierarchy words become shared bit nets; block-internal nets are
        prefixed with the block name to stay unique.
        """
        flat = Circuit(name or f"{self.name}_flat")
        word_bits: Dict[str, List[str]] = {}
        for word in self.input_words:
            bits = [f"{word}_{i}" for i in range(self.k)]
            flat.add_inputs(bits)
            flat.add_input_word(word, bits)
            word_bits[word] = bits
        for block in self.topological_blocks():
            prefix = f"{block.name}__"
            inner = (
                block.circuit.flatten() if block.is_nested else block.circuit
            )
            inst = inner.renamed(prefix)
            alias: Dict[str, str] = {}
            for circ_word, hier_word in block.input_bindings.items():
                for inst_bit, flat_bit in zip(
                    inst.input_words[circ_word], word_bits[hier_word]
                ):
                    alias[inst_bit] = flat_bit
            for gate in inst.topological_order():
                flat.add_gate(
                    gate.output,
                    gate.gate_type,
                    [alias.get(n, n) for n in gate.inputs],
                )
            for circ_word, hier_word in block.output_bindings.items():
                bits = [alias.get(b, b) for b in inst.output_words[circ_word]]
                word_bits[hier_word] = bits
        out_bits: List[str] = []
        for word in self.output_words:
            flat.add_output_word(word, word_bits[word])
            out_bits.extend(word_bits[word])
        flat.set_outputs(out_bits)
        return flat

    def num_gates(self) -> int:
        return sum(block.circuit.num_gates() for block in self.blocks)

    def __repr__(self) -> str:
        return (
            f"HierarchicalCircuit({self.name!r}, k={self.k}, "
            f"blocks={[b.name for b in self.blocks]})"
        )
