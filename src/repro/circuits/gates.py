"""Gate primitives for combinational netlists.

Gates are n-ary where the Boolean function is associative (AND/OR/XOR and
their complements), unary for NOT/BUF, and nullary for constants. Each gate
drives exactly one output net; a netlist is a set of gates plus the primary
input nets (see :mod:`repro.circuits.circuit`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import reduce
from typing import Callable, Dict, Tuple

__all__ = ["GateType", "Gate", "GATE_ARITY", "eval_gate"]


class GateType(enum.Enum):
    """Supported combinational gate functions."""

    AND = "and"
    OR = "or"
    XOR = "xor"
    NAND = "nand"
    NOR = "nor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"


#: (min_inputs, max_inputs) per gate type; ``None`` means unbounded.
GATE_ARITY: Dict[GateType, Tuple[int, int]] = {
    GateType.AND: (2, None),
    GateType.OR: (2, None),
    GateType.XOR: (2, None),
    GateType.NAND: (2, None),
    GateType.NOR: (2, None),
    GateType.XNOR: (2, None),
    GateType.NOT: (1, 1),
    GateType.BUF: (1, 1),
    GateType.CONST0: (0, 0),
    GateType.CONST1: (0, 0),
}


@dataclass(frozen=True)
class Gate:
    """A single gate: ``output = gate_type(inputs)``."""

    output: str
    gate_type: GateType
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        lo, hi = GATE_ARITY[self.gate_type]
        n = len(self.inputs)
        if n < lo or (hi is not None and n > hi):
            raise ValueError(
                f"{self.gate_type.value} gate on net {self.output!r} has "
                f"{n} inputs; expected between {lo} and {hi if hi is not None else 'inf'}"
            )

    def __str__(self) -> str:
        return f"{self.output} = {self.gate_type.value}({', '.join(self.inputs)})"


def _wordwise(op: Callable[[int, int], int], values: Tuple[int, ...]) -> int:
    return reduce(op, values)


def eval_gate(gate_type: GateType, values: Tuple[int, ...], mask: int = 1) -> int:
    """Evaluate a gate on bit-parallel integer values.

    Each value packs many simulation vectors, one per bit; ``mask`` selects
    the active lanes (``1`` for plain single-vector simulation). Complemented
    gates invert within the mask.
    """
    if gate_type is GateType.AND:
        return _wordwise(int.__and__, values)
    if gate_type is GateType.OR:
        return _wordwise(int.__or__, values)
    if gate_type is GateType.XOR:
        return _wordwise(int.__xor__, values)
    if gate_type is GateType.NAND:
        return mask & ~_wordwise(int.__and__, values)
    if gate_type is GateType.NOR:
        return mask & ~_wordwise(int.__or__, values)
    if gate_type is GateType.XNOR:
        return mask & ~_wordwise(int.__xor__, values)
    if gate_type is GateType.NOT:
        return mask & ~values[0]
    if gate_type is GateType.BUF:
        return values[0]
    if gate_type is GateType.CONST0:
        return 0
    if gate_type is GateType.CONST1:
        return mask
    raise ValueError(f"unknown gate type {gate_type!r}")
