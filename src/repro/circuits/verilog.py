"""Structural Verilog subset: writer and parser for gate-level netlists.

The dialect is the flat, gate-primitive style synthesis tools emit::

    module mastrovito_8 (a_0, ..., b_7, z_0, ..., z_7);
      input a_0, a_1, ...;
      output z_0, ...;
      wire n1, n2, ...;
      and g1 (n1, a_0, b_0);
      xor g2 (z_0, n1, n2);
      // word A = a_0 a_1 ... a_7   (annotation comments carry word info)
    endmodule

Only gate primitives (``and or xor nand nor xnor not buf``), constant
assigns (``assign n = 1'b0;``), and port declarations are supported — enough
to round-trip every circuit this library builds and to import externally
synthesised multipliers of the same style.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .circuit import Circuit, CircuitError
from .gates import GateType

__all__ = ["to_verilog", "from_verilog", "write_verilog", "read_verilog"]

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.XOR: "xor",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}
_PRIMITIVES_REVERSED = {v: k for k, v in _PRIMITIVES.items()}


def _sanitize(net: str) -> str:
    """Make a net name verilog-safe (escape is overkill for our generators)."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", net):
        return net
    return "\\" + net + " "


def to_verilog(circuit: Circuit) -> str:
    """Serialise a circuit as structural Verilog text."""
    ports = circuit.inputs + circuit.outputs
    lines: List[str] = []
    module_name = re.sub(r"[^A-Za-z0-9_]", "_", circuit.name) or "top"
    lines.append(f"module {module_name} ({', '.join(_sanitize(p) for p in ports)});")
    if circuit.inputs:
        lines.append(f"  input {', '.join(_sanitize(n) for n in circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(_sanitize(n) for n in circuit.outputs)};")
    output_set = set(circuit.outputs)
    wires = [g.output for g in circuit.gates if g.output not in output_set]
    if wires:
        lines.append(f"  wire {', '.join(_sanitize(n) for n in wires)};")
    for word, bits in circuit.input_words.items():
        lines.append(f"  // word input {word} = {' '.join(bits)}")
    for word, bits in circuit.output_words.items():
        lines.append(f"  // word output {word} = {' '.join(bits)}")
    index = 0
    for gate in circuit.topological_order():
        if gate.gate_type is GateType.CONST0:
            lines.append(f"  assign {_sanitize(gate.output)} = 1'b0;")
        elif gate.gate_type is GateType.CONST1:
            lines.append(f"  assign {_sanitize(gate.output)} = 1'b1;")
        else:
            index += 1
            prim = _PRIMITIVES[gate.gate_type]
            terminals = ", ".join(_sanitize(n) for n in (gate.output,) + gate.inputs)
            lines.append(f"  {prim} g{index} ({terminals});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    r"^\s*(and|or|xor|nand|nor|xnor|not|buf)\s+[A-Za-z_][\w$]*\s*\(([^)]*)\)\s*;"
)
_ASSIGN_RE = re.compile(r"^\s*assign\s+(\S+)\s*=\s*1'b([01])\s*;")
_DECL_RE = re.compile(r"^\s*(input|output|wire)\s+(.*);\s*$")
_WORD_RE = re.compile(r"^\s*//\s*word\s+(input|output)\s+(\S+)\s*=\s*(.*)$")
_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z_][\w$]*)")


def from_verilog(text: str) -> Circuit:
    """Parse the structural subset back into a :class:`Circuit`."""
    circuit: Circuit = Circuit("top")
    outputs: List[str] = []
    words: Dict[str, Dict[str, List[str]]] = {"input": {}, "output": {}}
    # Join statements split across lines, preserving comment lines.
    statements: List[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("//"):
            statements.append(line)
            continue
        pending = f"{pending} {line}".strip() if pending else line
        if pending.endswith(";") or pending.startswith(("module",)) and pending.endswith(");"):
            statements.append(pending)
            pending = ""
        elif pending.startswith("endmodule"):
            statements.append(pending)
            pending = ""
    if pending:
        statements.append(pending)

    for stmt in statements:
        m = _MODULE_RE.match(stmt)
        if m:
            circuit.name = m.group(1)
            continue
        m = _WORD_RE.match(stmt)
        if m:
            direction, word, bits = m.group(1), m.group(2), m.group(3).split()
            words[direction][word] = bits
            continue
        if stmt.startswith("//") or stmt.startswith("endmodule"):
            continue
        m = _DECL_RE.match(stmt)
        if m:
            kind, rest = m.group(1), m.group(2)
            nets = [n.strip() for n in rest.split(",") if n.strip()]
            if kind == "input":
                circuit.add_inputs(nets)
            elif kind == "output":
                outputs.extend(nets)
            continue
        m = _ASSIGN_RE.match(stmt)
        if m:
            circuit.CONST(int(m.group(2)), out=m.group(1))
            continue
        m = _GATE_RE.match(stmt)
        if m:
            prim, terminals = m.group(1), m.group(2)
            nets = [n.strip() for n in terminals.split(",") if n.strip()]
            if len(nets) < 2:
                raise CircuitError(f"malformed gate instance: {stmt!r}")
            circuit.add_gate(nets[0], _PRIMITIVES_REVERSED[prim], nets[1:])
            continue
    circuit.set_outputs(outputs)
    for word, bits in words["input"].items():
        circuit.add_input_word(word, bits)
    for word, bits in words["output"].items():
        circuit.add_output_word(word, bits)
    circuit.validate()
    return circuit


def write_verilog(circuit: Circuit, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_verilog(circuit))


def read_verilog(path: str) -> Circuit:
    with open(path) as handle:
        return from_verilog(handle.read())
