"""Netlist simplification: constant propagation and dead-logic removal.

The paper's Montgomery blocks (Table 2) are "simplified by
constant-propagation" — e.g. the input block multiplies by the constant
``R^2 mod P`` — so structurally identical block generators yield different
gate counts per block. This pass reproduces that flow: tie word inputs to
constants, sweep constants through the gate network, collapse trivial gates,
and strip logic no output depends on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .gates import GateType

__all__ = ["constant_propagate", "strip_dead_logic", "bind_word_constant", "simplify"]

_INVERTED = {
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
}


def bind_word_constant(circuit: Circuit, word: str, value: int) -> Circuit:
    """Tie an input word's bits to a constant residue.

    Returns a new circuit where the word's bit nets become constant gates
    and the word disappears from ``input_words``; follow with
    :func:`simplify` to propagate the constants.
    """
    if word not in circuit.input_words:
        raise CircuitError(f"{word!r} is not an input word of {circuit.name!r}")
    bits = circuit.input_words[word]
    bound = Circuit(f"{circuit.name}_{word}const")
    bit_set = set(bits)
    bound.add_inputs(n for n in circuit.inputs if n not in bit_set)
    for i, net in enumerate(bits):
        bound.CONST((value >> i) & 1, out=net)
    for gate in circuit.topological_order():
        bound.add_gate(gate.output, gate.gate_type, gate.inputs)
    bound.set_outputs(circuit.outputs)
    for w, b in circuit.input_words.items():
        if w != word:
            bound.add_input_word(w, b)
    for w, b in circuit.output_words.items():
        bound.add_output_word(w, b)
    return bound


def constant_propagate(circuit: Circuit) -> Circuit:
    """Sweep constants and identities through the netlist.

    Rules applied per gate, in topological order:

    - constant inputs are folded (``x XOR 1 -> NOT x``, ``x AND 0 -> 0``, ...)
    - single-survivor associative gates degenerate to BUF/NOT
    - BUF chains are bypassed (consumers read through them)

    Output nets keep their names (a BUF/CONST is materialised there when the
    net's function collapses), so word annotations stay valid.
    """
    const: Dict[str, int] = {}  # net -> 0/1 where known
    alias: Dict[str, str] = {}  # net -> equivalent earlier net

    def resolve(net: str) -> str:
        while net in alias:
            net = alias[net]
        return net

    keep: List[Tuple[str, GateType, Tuple[str, ...]]] = []
    output_set = set(circuit.outputs)
    for word_bits in circuit.output_words.values():
        output_set.update(word_bits)

    def emit(out: str, gate_type: GateType, inputs: Sequence[str]) -> None:
        keep.append((out, gate_type, tuple(inputs)))

    for gate in circuit.topological_order():
        out = gate.output
        gate_type = gate.gate_type
        if gate_type is GateType.CONST0:
            const[out] = 0
            continue
        if gate_type is GateType.CONST1:
            const[out] = 1
            continue
        ins = [resolve(n) for n in gate.inputs]
        known = [const[n] for n in ins if n in const]
        unknown = [n for n in ins if n not in const]

        if gate_type in (GateType.BUF, GateType.NOT):
            invert = gate_type is GateType.NOT
            if not unknown:
                const[out] = known[0] ^ invert
            elif invert:
                emit(out, GateType.NOT, unknown)
            else:
                alias[out] = unknown[0]
            continue

        invert = gate_type in _INVERTED
        base = _INVERTED.get(gate_type, gate_type)

        if base is GateType.XOR:
            parity = invert
            for v in known:
                parity ^= v
            # XOR of a net with itself cancels pairwise.
            counts: Dict[str, int] = {}
            for n in unknown:
                counts[n] = counts.get(n, 0) + 1
            survivors = [n for n, c in counts.items() if c & 1]
            if not survivors:
                const[out] = int(parity)
            elif len(survivors) == 1:
                if parity:
                    emit(out, GateType.NOT, survivors)
                else:
                    alias[out] = survivors[0]
            else:
                emit(out, GateType.XNOR if parity else GateType.XOR, survivors)
            continue

        # AND / OR with absorbing and identity constants.
        absorbing = 0 if base is GateType.AND else 1
        if absorbing in known:
            const[out] = absorbing ^ invert
            continue
        survivors = list(dict.fromkeys(unknown))  # dedupe, keep order (idempotent)
        if not survivors:
            const[out] = (1 - absorbing) ^ invert
        elif len(survivors) == 1:
            if invert:
                emit(out, GateType.NOT, survivors)
            else:
                alias[out] = survivors[0]
        else:
            emit(out, GateType.NAND if invert and base is GateType.AND
                 else GateType.NOR if invert else base, survivors)

    simplified = Circuit(circuit.name)
    simplified.add_inputs(circuit.inputs)
    emitted = set(circuit.inputs)
    for out, gate_type, inputs in keep:
        simplified.add_gate(out, gate_type, inputs)
        emitted.add(out)
    # Materialise collapsed output nets so port names survive.
    for net in sorted(output_set):
        if net in emitted:
            continue
        if net in const:
            simplified.CONST(const[net], out=net)
        else:
            source = resolve(net)
            if source in const:
                simplified.CONST(const[source], out=net)
            else:
                simplified.BUF(source, out=net)
        emitted.add(net)
    simplified.set_outputs(circuit.outputs)
    for w, b in circuit.input_words.items():
        simplified.add_input_word(w, b)
    for w, b in circuit.output_words.items():
        simplified.add_output_word(w, b)
    return simplified


def strip_dead_logic(circuit: Circuit) -> Circuit:
    """Remove gates that no primary output (or output word bit) reads."""
    live = set(circuit.outputs)
    for bits in circuit.output_words.values():
        live.update(bits)
    for gate in reversed(circuit.topological_order()):
        if gate.output in live:
            live.update(gate.inputs)
    pruned = Circuit(circuit.name)
    pruned.add_inputs(circuit.inputs)
    for gate in circuit.topological_order():
        if gate.output in live:
            pruned.add_gate(gate.output, gate.gate_type, gate.inputs)
    pruned.set_outputs(circuit.outputs)
    for w, b in circuit.input_words.items():
        pruned.add_input_word(w, b)
    for w, b in circuit.output_words.items():
        pruned.add_output_word(w, b)
    return pruned


def simplify(circuit: Circuit, rounds: int = 4) -> Circuit:
    """Fixpoint of constant propagation + dead-logic removal."""
    current = circuit
    for _ in range(rounds):
        before = current.num_gates()
        current = strip_dead_logic(constant_propagate(current))
        if current.num_gates() == before:
            break
    return current
