"""Bug injection and semantics-preserving rewrites for netlists.

The paper's Example 5.1 studies abstraction of *buggy* circuits (where the
Case-2 Gröbner basis computation kicks in). This module injects the classic
gate-level design-error models: gate-type substitution, input swap, and
wrong-input (connection) errors. Each mutation returns a fresh circuit plus
a record of what changed, so experiments can sweep error populations.

A second family of mutators is *semantics-preserving*: De Morgan gate
re-encodings, XOR expansion, buffer/double-inverter insertion, and dead
logic — the primitives the reverse-engineering obfuscation suite
(:mod:`repro.reveng.obfuscate`) layers into whole-netlist transforms. These
operate **in place** (callers clone first) because obfuscation applies
hundreds of them per netlist; anything randomized takes an explicit
``rng``/``seed`` so variant generation is reproducible in CI — none of the
mutators in this module consults global random state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .circuit import Circuit
from .gates import Gate, GateType

__all__ = [
    "Mutation",
    "add_dead_gate",
    "demorgan_gate",
    "expand_xor_gate",
    "insert_buffer",
    "insert_inverter_pair",
    "random_mutation",
    "rewire_gate_input",
    "substitute_gate_type",
    "swap_gate_inputs",
]

#: Gate-type substitution targets that always change the Boolean function.
_SUBSTITUTIONS = {
    GateType.AND: [GateType.OR, GateType.XOR, GateType.NAND],
    GateType.OR: [GateType.AND, GateType.XOR, GateType.NOR],
    GateType.XOR: [GateType.AND, GateType.OR, GateType.XNOR],
    GateType.NAND: [GateType.AND, GateType.NOR, GateType.XNOR],
    GateType.NOR: [GateType.OR, GateType.NAND, GateType.XOR],
    GateType.XNOR: [GateType.XOR, GateType.AND, GateType.OR],
    GateType.NOT: [GateType.BUF],
    GateType.BUF: [GateType.NOT],
}


@dataclass(frozen=True)
class Mutation:
    """Record of an injected design error."""

    kind: str
    net: str
    before: Gate
    after: Gate

    def __str__(self) -> str:
        return f"{self.kind} at {self.net!r}: [{self.before}] -> [{self.after}]"


def substitute_gate_type(
    circuit: Circuit, net: str, new_type: Optional[GateType] = None
) -> "tuple[Circuit, Mutation]":
    """Replace the gate driving ``net`` with a different gate type."""
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if new_type is None:
        choices = _SUBSTITUTIONS.get(before.gate_type)
        if not choices:
            raise ValueError(f"no substitution defined for {before.gate_type}")
        new_type = choices[0]
    mutant.replace_gate(net, new_type, before.inputs)
    after = mutant.gate_driving(net)
    return mutant, Mutation("gate-substitution", net, before, after)


def swap_gate_inputs(circuit: Circuit, net: str) -> "tuple[Circuit, Mutation]":
    """Swap the first two inputs of the gate driving ``net``.

    Only meaningful combined with asymmetric rewiring; provided for
    completeness of the classical error model (it is a no-op for the
    symmetric gate library, which tests assert).
    """
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if len(before.inputs) < 2:
        raise ValueError(f"gate at {net!r} has fewer than two inputs")
    swapped = (before.inputs[1], before.inputs[0]) + before.inputs[2:]
    mutant.replace_gate(net, before.gate_type, swapped)
    return mutant, Mutation("input-swap", net, before, mutant.gate_driving(net))


def rewire_gate_input(
    circuit: Circuit, net: str, position: int, new_source: str
) -> "tuple[Circuit, Mutation]":
    """Reconnect one input of the gate driving ``net`` to a different net.

    This is the bug class of the paper's Example 5.1, where
    ``r0 = s1 + s2`` becomes ``r0 = s0 + s2``. Rewiring must not create a
    combinational cycle; the caller picks ``new_source`` upstream of ``net``.
    """
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if not 0 <= position < len(before.inputs):
        raise ValueError(f"gate at {net!r} has no input position {position}")
    inputs = list(before.inputs)
    inputs[position] = new_source
    mutant.replace_gate(net, before.gate_type, inputs)
    mutant.validate()  # rejects cycles introduced by the rewiring
    return mutant, Mutation("rewire", net, before, mutant.gate_driving(net))


def random_mutation(
    circuit: Circuit,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> "tuple[Circuit, Mutation]":
    """Inject one random gate-substitution error at a mutable gate.

    Pass ``rng`` (or the convenience ``seed``) for reproducible error
    populations; the default remains nondeterministic.
    """
    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    candidates: List[str] = [
        gate.output
        for gate in circuit.gates
        if gate.gate_type in _SUBSTITUTIONS
    ]
    if not candidates:
        raise ValueError("circuit has no mutable gates")
    net = rng.choice(candidates)
    before = circuit.gate_driving(net)
    new_type = rng.choice(_SUBSTITUTIONS[before.gate_type])
    return substitute_gate_type(circuit, net, new_type)


# -- semantics-preserving obfuscation primitives (in place) -------------------
#
# Each transform leaves the Boolean function of every pre-existing net
# unchanged; only the gate-level encoding grows. They mutate ``circuit``
# directly — the obfuscation suite clones once and applies many.

#: De Morgan duals: the gate at a net is replaced by the dual over inverted
#: inputs plus an output inversion, e.g. ``AND(a, b) == NOT(OR(!a, !b))``.
_DEMORGAN_DUAL = {
    GateType.AND: GateType.OR,
    GateType.OR: GateType.AND,
    GateType.NAND: GateType.NOR,
    GateType.NOR: GateType.NAND,
}


def demorgan_gate(circuit: Circuit, net: str) -> bool:
    """Re-encode the AND/OR/NAND/NOR gate driving ``net`` via De Morgan.

    ``AND(a, b, ...)`` becomes ``NOT(OR(!a, !b, ...))`` (and dually for the
    other three types); NAND/NOR drop the trailing inversion instead of
    gaining one. Returns True when the gate was rewritten, False when its
    type has no De Morgan dual (XOR, NOT, BUF, constants).
    """
    gate = circuit.gate_driving(net)
    dual = _DEMORGAN_DUAL.get(gate.gate_type)
    if dual is None:
        return False
    inverted = [
        circuit.NOT(source, out=circuit.fresh_net("dm")) for source in gate.inputs
    ]
    if gate.gate_type in (GateType.AND, GateType.OR):
        inner = circuit.add_gate(circuit.fresh_net("dm"), dual, inverted)
        circuit.replace_gate(net, GateType.NOT, (inner,))
    else:  # NAND == OR of inverted inputs, NOR == AND of inverted inputs
        plain = GateType.OR if gate.gate_type is GateType.NAND else GateType.AND
        circuit.replace_gate(net, plain, inverted)
    return True


def expand_xor_gate(circuit: Circuit, net: str) -> bool:
    """Re-encode a 2-input XOR/XNOR as AND/OR/NOT logic.

    ``XOR(a, b)`` becomes ``OR(AND(a, !b), AND(!a, b))``; XNOR gains a
    trailing inversion. Returns False for other gate types and for wider
    XOR gates (the generators emit 2-input trees).
    """
    gate = circuit.gate_driving(net)
    if gate.gate_type not in (GateType.XOR, GateType.XNOR) or len(gate.inputs) != 2:
        return False
    a, b = gate.inputs
    not_a = circuit.NOT(a, out=circuit.fresh_net("xe"))
    not_b = circuit.NOT(b, out=circuit.fresh_net("xe"))
    left = circuit.AND(a, not_b, out=circuit.fresh_net("xe"))
    right = circuit.AND(not_a, b, out=circuit.fresh_net("xe"))
    if gate.gate_type is GateType.XOR:
        circuit.replace_gate(net, GateType.OR, (left, right))
    else:
        inner = circuit.OR(left, right, out=circuit.fresh_net("xe"))
        circuit.replace_gate(net, GateType.NOT, (inner,))
    return True


def insert_buffer(circuit: Circuit, net: str, position: int) -> str:
    """Interpose a BUF on one input of the gate driving ``net``.

    Returns the new intermediate net. The driven function is unchanged;
    the netlist grows by one gate.
    """
    gate = circuit.gate_driving(net)
    if not 0 <= position < len(gate.inputs):
        raise ValueError(f"gate at {net!r} has no input position {position}")
    hop = circuit.BUF(gate.inputs[position], out=circuit.fresh_net("buf"))
    inputs = list(gate.inputs)
    inputs[position] = hop
    circuit.replace_gate(net, gate.gate_type, inputs)
    return hop


def insert_inverter_pair(circuit: Circuit, net: str, position: int) -> str:
    """Interpose ``NOT(NOT(...))`` on one input of the gate driving ``net``.

    Returns the second (outer) inverter's net. Two gates are added; the
    function is unchanged.
    """
    gate = circuit.gate_driving(net)
    if not 0 <= position < len(gate.inputs):
        raise ValueError(f"gate at {net!r} has no input position {position}")
    first = circuit.NOT(gate.inputs[position], out=circuit.fresh_net("inv"))
    second = circuit.NOT(first, out=circuit.fresh_net("inv"))
    inputs = list(gate.inputs)
    inputs[position] = second
    circuit.replace_gate(net, gate.gate_type, inputs)
    return second


def add_dead_gate(
    circuit: Circuit,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> str:
    """Add one gate whose output drives nothing (dead logic).

    The gate reads random existing nets, so it looks like live structure to
    a casual reader but never reaches a primary output. Pass ``rng`` (or
    ``seed``) for reproducible injection; returns the dead net.
    """
    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    sources = circuit.inputs + [gate.output for gate in circuit.gates]
    gate_type = rng.choice(
        [GateType.AND, GateType.OR, GateType.XOR, GateType.NAND, GateType.NOR]
    )
    picks = (
        rng.sample(sources, 2) if len(sources) >= 2 else [sources[0], sources[0]]
    )
    return circuit.add_gate(circuit.fresh_net("dead"), gate_type, picks)
