"""Bug injection for netlists.

The paper's Example 5.1 studies abstraction of *buggy* circuits (where the
Case-2 Gröbner basis computation kicks in). This module injects the classic
gate-level design-error models: gate-type substitution, input swap, and
wrong-input (connection) errors. Each mutation returns a fresh circuit plus
a record of what changed, so experiments can sweep error populations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .circuit import Circuit
from .gates import Gate, GateType

__all__ = ["Mutation", "substitute_gate_type", "swap_gate_inputs", "rewire_gate_input", "random_mutation"]

#: Gate-type substitution targets that always change the Boolean function.
_SUBSTITUTIONS = {
    GateType.AND: [GateType.OR, GateType.XOR, GateType.NAND],
    GateType.OR: [GateType.AND, GateType.XOR, GateType.NOR],
    GateType.XOR: [GateType.AND, GateType.OR, GateType.XNOR],
    GateType.NAND: [GateType.AND, GateType.NOR, GateType.XNOR],
    GateType.NOR: [GateType.OR, GateType.NAND, GateType.XOR],
    GateType.XNOR: [GateType.XOR, GateType.AND, GateType.OR],
    GateType.NOT: [GateType.BUF],
    GateType.BUF: [GateType.NOT],
}


@dataclass(frozen=True)
class Mutation:
    """Record of an injected design error."""

    kind: str
    net: str
    before: Gate
    after: Gate

    def __str__(self) -> str:
        return f"{self.kind} at {self.net!r}: [{self.before}] -> [{self.after}]"


def substitute_gate_type(
    circuit: Circuit, net: str, new_type: Optional[GateType] = None
) -> "tuple[Circuit, Mutation]":
    """Replace the gate driving ``net`` with a different gate type."""
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if new_type is None:
        choices = _SUBSTITUTIONS.get(before.gate_type)
        if not choices:
            raise ValueError(f"no substitution defined for {before.gate_type}")
        new_type = choices[0]
    mutant.replace_gate(net, new_type, before.inputs)
    after = mutant.gate_driving(net)
    return mutant, Mutation("gate-substitution", net, before, after)


def swap_gate_inputs(circuit: Circuit, net: str) -> "tuple[Circuit, Mutation]":
    """Swap the first two inputs of the gate driving ``net``.

    Only meaningful combined with asymmetric rewiring; provided for
    completeness of the classical error model (it is a no-op for the
    symmetric gate library, which tests assert).
    """
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if len(before.inputs) < 2:
        raise ValueError(f"gate at {net!r} has fewer than two inputs")
    swapped = (before.inputs[1], before.inputs[0]) + before.inputs[2:]
    mutant.replace_gate(net, before.gate_type, swapped)
    return mutant, Mutation("input-swap", net, before, mutant.gate_driving(net))


def rewire_gate_input(
    circuit: Circuit, net: str, position: int, new_source: str
) -> "tuple[Circuit, Mutation]":
    """Reconnect one input of the gate driving ``net`` to a different net.

    This is the bug class of the paper's Example 5.1, where
    ``r0 = s1 + s2`` becomes ``r0 = s0 + s2``. Rewiring must not create a
    combinational cycle; the caller picks ``new_source`` upstream of ``net``.
    """
    mutant = circuit.clone(f"{circuit.name}_bug")
    before = mutant.gate_driving(net)
    if not 0 <= position < len(before.inputs):
        raise ValueError(f"gate at {net!r} has no input position {position}")
    inputs = list(before.inputs)
    inputs[position] = new_source
    mutant.replace_gate(net, before.gate_type, inputs)
    mutant.validate()  # rejects cycles introduced by the rewiring
    return mutant, Mutation("rewire", net, before, mutant.gate_driving(net))


def random_mutation(
    circuit: Circuit,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
) -> "tuple[Circuit, Mutation]":
    """Inject one random gate-substitution error at a mutable gate.

    Pass ``rng`` (or the convenience ``seed``) for reproducible error
    populations; the default remains nondeterministic.
    """
    if rng is None:
        rng = random.Random(seed) if seed is not None else random.Random()
    candidates: List[str] = [
        gate.output
        for gate in circuit.gates
        if gate.gate_type in _SUBSTITUTIONS
    ]
    if not candidates:
        raise ValueError("circuit has no mutable gates")
    net = rng.choice(candidates)
    before = circuit.gate_driving(net)
    new_type = rng.choice(_SUBSTITUTIONS[before.gate_type])
    return substitute_gate_type(circuit, net, new_type)
