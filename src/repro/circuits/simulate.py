"""Bit-parallel simulation of combinational circuits.

Net values are Python ints holding one simulation vector per bit, so a
single topological sweep evaluates the circuit on arbitrarily many input
patterns at once. Word-level helpers translate between field residues and
the per-bit patterns of a word's nets.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from .circuit import Circuit, CircuitError
from .gates import eval_gate

__all__ = ["simulate", "simulate_words", "exhaustive_word_table"]


def simulate(
    circuit: Circuit, input_values: Mapping[str, int], lanes: int = 1
) -> Dict[str, int]:
    """Evaluate every net given primary-input values.

    ``input_values`` maps each primary input net to an integer whose low
    ``lanes`` bits are independent simulation vectors. Returns the value of
    every net in the circuit.
    """
    mask = (1 << lanes) - 1
    values: Dict[str, int] = {}
    for net in circuit.inputs:
        if net not in input_values:
            raise CircuitError(f"missing value for primary input {net!r}")
        values[net] = input_values[net] & mask
    for gate in circuit.topological_order():
        values[gate.output] = eval_gate(
            gate.gate_type, tuple(values[n] for n in gate.inputs), mask
        )
    return values


def _spread_words(
    circuit: Circuit, word_values: Mapping[str, Sequence[int]], lanes: int
) -> Dict[str, int]:
    """Turn per-lane word residues into bit-parallel net patterns."""
    input_values: Dict[str, int] = {}
    for word, bits in circuit.input_words.items():
        if word not in word_values:
            raise CircuitError(f"missing value for input word {word!r}")
        residues = word_values[word]
        if len(residues) != lanes:
            raise CircuitError(
                f"word {word!r}: got {len(residues)} lane values, expected {lanes}"
            )
        for i, net in enumerate(bits):
            pattern = 0
            for lane, residue in enumerate(residues):
                pattern |= ((residue >> i) & 1) << lane
            input_values[net] = pattern
    return input_values


def simulate_words(
    circuit: Circuit, word_values: Mapping[str, Sequence[int]]
) -> Dict[str, List[int]]:
    """Simulate on word-level stimuli; returns per-lane output-word residues.

    ``word_values[word]`` is a sequence of field residues, one per lane; the
    result maps each output word to its residues in the same lane order.
    """
    lanes = None
    for residues in word_values.values():
        if lanes is None:
            lanes = len(residues)
        elif len(residues) != lanes:
            raise CircuitError("all input words need the same number of lanes")
    if lanes is None or lanes == 0:
        return {word: [] for word in circuit.output_words}
    values = simulate(circuit, _spread_words(circuit, word_values, lanes), lanes)
    results: Dict[str, List[int]] = {}
    for word, bits in circuit.output_words.items():
        lane_values = []
        for lane in range(lanes):
            residue = 0
            for i, net in enumerate(bits):
                residue |= ((values[net] >> lane) & 1) << i
            lane_values.append(residue)
        results[word] = lane_values
    return results


def exhaustive_word_table(
    circuit: Circuit, k: int, words: Iterable[str] = ()
) -> Dict[tuple, Dict[str, int]]:
    """Full truth table over all word-input combinations (small k only).

    Returns ``{(a, b, ...): {output_word: value}}`` for every point of
    ``F_{2^k}^n`` in the order of ``circuit.input_words``. The table grows as
    ``2^(k*n)``; callers use it as a ground-truth oracle at small k.
    """
    del words  # reserved for sub-selection; the full word set is always used
    names = list(circuit.input_words)
    n = len(names)
    total = 1 << (k * n)
    if total > 1 << 20:
        raise CircuitError(
            f"exhaustive table over {n} words of {k} bits has {total} rows; too large"
        )
    points = []
    for index in range(total):
        points.append(tuple((index >> (k * j)) & ((1 << k) - 1) for j in range(n)))
    stimuli = {name: [p[j] for p in points] for j, name in enumerate(names)}
    outputs = simulate_words(circuit, stimuli)
    table: Dict[tuple, Dict[str, int]] = {}
    for row, point in enumerate(points):
        table[point] = {word: lanes[row] for word, lanes in outputs.items()}
    return table
