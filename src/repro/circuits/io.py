"""Format-agnostic netlist loading.

``read_netlist`` picks the parser by file extension (``.blif`` / ``.v``)
and falls back to *content sniffing* for anything else: a BLIF file opens
with a ``.model`` directive, a structural-Verilog file with a ``module``
header. Unrecognisable content raises :class:`CircuitError` with a
diagnostic instead of letting the wrong parser crash mid-file — the CLI
and the batch engine both route every netlist load through here.
"""

from __future__ import annotations

import os

from ..obs.spans import span
from .blif import from_blif, read_blif
from .circuit import Circuit, CircuitError
from .verilog import from_verilog, read_verilog

__all__ = ["read_netlist", "read_netlist_text", "sniff_netlist_format"]


def sniff_netlist_format(text: str) -> "str | None":
    """``"blif"``, ``"verilog"`` or None, judged from the first directive.

    Comment lines (``#`` for BLIF, ``//`` for Verilog) and blank lines are
    skipped; the first remaining token decides.
    """
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith("//"):
            continue
        token = stripped.split()[0]
        if token in (".model", ".inputs", ".outputs", ".names"):
            return "blif"
        if token == "module":
            return "verilog"
        return None
    return None


def read_netlist_text(text: str, name: str = "<netlist>") -> Circuit:
    """Parse a netlist from an in-memory string, sniffing the format.

    The streamed-body twin of :func:`read_netlist`: the verification
    service receives netlists in HTTP request bodies rather than as paths
    on its own filesystem, so the reader must work without a file. ``name``
    labels parse errors and the trace span (there is no path to show).
    """
    with span("parse", path=name):
        fmt = sniff_netlist_format(text)
        if fmt == "blif":
            return from_blif(text)
        if fmt == "verilog":
            return from_verilog(text)
        raise CircuitError(
            f"cannot determine netlist format of {name}: expected a BLIF "
            f"'.model' header or a Verilog 'module' header"
        )


def read_netlist(path: str) -> Circuit:
    """Load a netlist, choosing the parser by extension or content."""
    with span("parse", path=os.path.basename(path)):
        if not os.path.exists(path):
            raise CircuitError(f"netlist file not found: {path}")
        if path.endswith(".blif"):
            return read_blif(path)
        if path.endswith(".v"):
            return read_verilog(path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        fmt = sniff_netlist_format(text)
        if fmt == "blif":
            return read_blif(path)
        if fmt == "verilog":
            return read_verilog(path)
        raise CircuitError(
            f"cannot determine netlist format of {path!r}: expected a BLIF "
            f"'.model' header or a Verilog 'module' header (or use a .blif/.v "
            f"file extension)"
        )
