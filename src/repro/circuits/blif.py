"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational core of BLIF: ``.model``, ``.inputs``,
``.outputs``, ``.names`` cover tables, and ``.end``. Gates are written as
their canonical sum-of-products cover; on reading, covers that match a known
gate function map back to library gates, and anything else is rejected (this
library only models the standard gate primitives).
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Dict, List, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .gates import GateType, eval_gate

__all__ = ["to_blif", "from_blif", "write_blif", "read_blif"]


def _cover_for(gate_type: GateType, n: int) -> List[str]:
    """Canonical BLIF cover lines (input-pattern + ' 1') for a gate type."""
    if gate_type is GateType.CONST0:
        return []
    if gate_type is GateType.CONST1:
        return ["1"]
    if gate_type is GateType.AND:
        return ["1" * n + " 1"]
    if gate_type is GateType.NOR:
        return ["0" * n + " 1"]
    if gate_type is GateType.OR:
        return ["-" * i + "1" + "-" * (n - i - 1) + " 1" for i in range(n)]
    if gate_type is GateType.NAND:
        return ["-" * i + "0" + "-" * (n - i - 1) + " 1" for i in range(n)]
    if gate_type is GateType.NOT:
        return ["0 1"]
    if gate_type is GateType.BUF:
        return ["1 1"]
    # XOR/XNOR need the full minterm list (no shorter cube cover exists).
    lines = []
    for bits in cartesian_product("01", repeat=n):
        parity = bits.count("1") & 1
        want = 1 if gate_type is GateType.XOR else 0
        if parity == want:
            lines.append("".join(bits) + " 1")
    return lines


def to_blif(circuit: Circuit) -> str:
    """Serialise to BLIF text."""
    lines = [f".model {circuit.name}"]
    if circuit.inputs:
        lines.append(".inputs " + " ".join(circuit.inputs))
    if circuit.outputs:
        lines.append(".outputs " + " ".join(circuit.outputs))
    for word, bits in circuit.input_words.items():
        lines.append(f"# word input {word} = {' '.join(bits)}")
    for word, bits in circuit.output_words.items():
        lines.append(f"# word output {word} = {' '.join(bits)}")
    for gate in circuit.topological_order():
        lines.append(".names " + " ".join(gate.inputs + (gate.output,)))
        lines.extend(_cover_for(gate.gate_type, len(gate.inputs)))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _truth_vector(cover: Sequence[str], n: int) -> int:
    """Evaluate a cover into a 2^n-bit truth vector (minterm i at bit i)."""
    vector = 0
    for row in range(1 << n):
        value = 0
        for line in cover:
            if not line:
                continue
            pattern, out = (line.split() + ["1"])[:2] if " " in line else (line, "1")
            if n == 0:
                value = int(out)
                break
            match = all(
                c == "-" or int(c) == ((row >> i) & 1)
                for i, c in enumerate(pattern)  # BLIF patterns: first char = first input
            )
            # BLIF lists inputs left-to-right; bit i of ``row`` is input i.
            if match and out == "1":
                value = 1
                break
        vector |= value << row
    return vector


def _identify_gate(cover: Sequence[str], n: int) -> GateType:
    """Match a cover's truth vector against the gate library."""
    vector = _truth_vector(cover, n)
    if n == 0:
        return GateType.CONST1 if vector & 1 else GateType.CONST0
    candidates = (
        [GateType.NOT, GateType.BUF]
        if n == 1
        else [
            GateType.AND,
            GateType.OR,
            GateType.XOR,
            GateType.NAND,
            GateType.NOR,
            GateType.XNOR,
        ]
    )
    for gate_type in candidates:
        reference = 0
        for row in range(1 << n):
            inputs = tuple((row >> i) & 1 for i in range(n))
            reference |= eval_gate(gate_type, inputs, 1) << row
        if vector == reference:
            return gate_type
    raise CircuitError(f"cover does not match any library gate (n={n})")


def from_blif(text: str) -> Circuit:
    """Parse combinational BLIF back into a :class:`Circuit`."""
    circuit = Circuit("top")
    outputs: List[str] = []
    words: Dict[str, Dict[str, List[str]]] = {"input": {}, "output": {}}
    lines = text.splitlines()
    # Handle line continuations.
    merged: List[str] = []
    for raw in lines:
        line = raw.rstrip()
        if merged and merged[-1].endswith("\\"):
            merged[-1] = merged[-1][:-1] + " " + line.strip()
        else:
            merged.append(line)
    i = 0
    while i < len(merged):
        line = merged[i].strip()
        i += 1
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) >= 5 and parts[0] == "word" and parts[3] == "=":
                words[parts[1]][parts[2]] = parts[4:]
            continue
        if line.startswith(".model"):
            parts = line.split()
            if len(parts) > 1:
                circuit.name = parts[1]
        elif line.startswith(".inputs"):
            circuit.add_inputs(line.split()[1:])
        elif line.startswith(".outputs"):
            outputs.extend(line.split()[1:])
        elif line.startswith(".names"):
            nets = line.split()[1:]
            if not nets:
                raise CircuitError(".names with no nets")
            *gate_inputs, output = nets
            cover: List[str] = []
            while i < len(merged):
                nxt = merged[i].strip()
                if not nxt or nxt.startswith((".", "#")):
                    break
                cover.append(nxt)
                i += 1
            gate_type = _identify_gate(cover, len(gate_inputs))
            circuit.add_gate(output, gate_type, gate_inputs)
        elif line.startswith(".end"):
            break
        else:
            raise CircuitError(f"unsupported BLIF construct: {line!r}")
    circuit.set_outputs(outputs)
    for word, bits in words["input"].items():
        circuit.add_input_word(word, bits)
    for word, bits in words["output"].items():
        circuit.add_output_word(word, bits)
    circuit.validate()
    return circuit


def write_blif(circuit: Circuit, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(to_blif(circuit))


def read_blif(path: str) -> Circuit:
    with open(path) as handle:
        return from_blif(handle.read())
