"""Gate-level netlist substrate: circuits, simulation, hierarchy, I/O."""

from .blif import from_blif, read_blif, to_blif, write_blif
from .circuit import Circuit, CircuitError, FaninCone
from .gates import GATE_ARITY, Gate, GateType, eval_gate
from .hierarchy import Block, HierarchicalCircuit
from .mutate import (
    Mutation,
    add_dead_gate,
    demorgan_gate,
    expand_xor_gate,
    insert_buffer,
    insert_inverter_pair,
    random_mutation,
    rewire_gate_input,
    substitute_gate_type,
    swap_gate_inputs,
)
from .io import read_netlist, read_netlist_text, sniff_netlist_format
from .simulate import exhaustive_word_table, simulate, simulate_words
from .verilog import from_verilog, read_verilog, to_verilog, write_verilog

__all__ = [
    "Circuit",
    "CircuitError",
    "FaninCone",
    "Gate",
    "GateType",
    "GATE_ARITY",
    "eval_gate",
    "Block",
    "HierarchicalCircuit",
    "Mutation",
    "substitute_gate_type",
    "swap_gate_inputs",
    "rewire_gate_input",
    "random_mutation",
    "add_dead_gate",
    "demorgan_gate",
    "expand_xor_gate",
    "insert_buffer",
    "insert_inverter_pair",
    "simulate",
    "simulate_words",
    "exhaustive_word_table",
    "to_verilog",
    "from_verilog",
    "write_verilog",
    "read_verilog",
    "to_blif",
    "from_blif",
    "write_blif",
    "read_blif",
    "read_netlist",
    "read_netlist_text",
    "sniff_netlist_format",
]
