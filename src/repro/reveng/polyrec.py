"""Recovery of an unknown field polynomial ``P(x)`` from a bare netlist.

A Galois-field multiplier netlist fixes its field: the circuit computes
``Z = A * B mod P(x)`` for exactly one irreducible ``P``. When ``P`` is not
documented (third-party IP, decapped silicon, an obfuscated design), it can
be *recovered* by sweeping candidate irreducibles: abstract the netlist
over ``GF(2^m)`` built from each candidate ``Q`` and test whether the
canonical polynomial collapses to the spec form ``Z = A * B``. Under the
true ``P`` it does (Cor. 4.1 — the canonical polynomial is unique); under
a wrong ``Q`` the extraction still terminates but yields a sparse cloud of
``A^(2^s) * B^(2^t)`` cross terms, which the spec-form comparison rejects.

Candidates come from :func:`repro.gf.irreducible_polynomials` in
(weight, value) order — trinomials before pentanomials before denser forms.
Hardware overwhelmingly picks the lowest-weight irreducible available
(every NIST/SEC curve polynomial does), so the true modulus of a real
design surfaces within the first handful of probes even though the full
irreducible census is exponential in ``m``. Each probe routes through the
content-addressed canonical-polynomial cache, making a repeated sweep —
the second auditor to examine the same netlist — almost free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from itertools import islice
from typing import Dict, List, Optional

from ..circuits import Circuit
from ..gf import GF2m, irreducible_polynomials
from ..jobs.cache import CanonicalPolyCache
from ..obs import metrics, span
from ..core import word_ring_for
from ..prepass import PrepassError, apply_prepass, resolve_prepass
from .probe import ProbeRecord, probe_canonical, probe_words
from .specforms import SPEC_FORMS, build_form

__all__ = ["RevengResult", "infer_degree", "recover_polynomial"]


@dataclass
class RevengResult:
    """Outcome of one polynomial-recovery sweep."""

    degree: int
    spec_form: str
    matches: List[int]
    candidates_tried: int
    cache_hits: int
    seconds: float
    exhausted: bool
    probes: List[ProbeRecord] = dataclass_field(default_factory=list)

    @property
    def recovered(self) -> Optional[int]:
        """The first (lowest-weight) matching modulus, or None."""
        return self.matches[0] if self.matches else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "degree": self.degree,
            "spec_form": self.spec_form,
            "recovered": (
                f"{self.recovered:#x}" if self.recovered is not None else None
            ),
            "matches": [f"{modulus:#x}" for modulus in self.matches],
            "candidates_tried": self.candidates_tried,
            "cache_hits": self.cache_hits,
            "seconds": round(self.seconds, 6),
            "exhausted": self.exhausted,
            "probes": [record.to_dict() for record in self.probes],
        }


def infer_degree(circuit: Circuit) -> int:
    """Field degree ``m`` implied by the netlist's word annotations.

    The output word's width is authoritative (a GF(2^m) datapath result is
    m bits); input word widths are the fallback for output-less fragments.
    Mixed widths mean the netlist is not a single-field datapath — the
    caller must pass ``m`` explicitly.
    """
    widths = {len(bits) for bits in circuit.output_words.values()}
    if not widths:
        widths = {len(bits) for bits in circuit.input_words.values()}
    if not widths:
        raise ValueError(
            f"circuit {circuit.name!r} has no word annotations; "
            "pass the field degree explicitly"
        )
    if len(widths) > 1:
        raise ValueError(
            f"circuit {circuit.name!r} has mixed word widths {sorted(widths)}; "
            "pass the field degree explicitly"
        )
    return widths.pop()


def recover_polynomial(
    circuit: Circuit,
    degree: Optional[int] = None,
    spec_form: str = "mul",
    case2: str = "linearized",
    cache: Optional[CanonicalPolyCache] = None,
    all_candidates: bool = False,
    limit: Optional[int] = None,
    jobs: Optional[int] = None,
    inflight=None,
    prepass: Optional[bool] = None,
) -> RevengResult:
    """Sweep candidate irreducibles of ``degree`` until one explains the netlist.

    For each candidate ``Q`` (lowest weight first) the netlist's canonical
    polynomial over ``GF(2^degree)`` mod ``Q`` is extracted (through the
    cache) and compared against the expected ``spec_form`` polynomial.
    Matching moduli accumulate in ``matches``; by default the sweep stops
    at the first match (hardware uses the lowest-weight irreducible, and
    the canonical polynomial is unique per field, so the first hit is the
    answer). ``all_candidates=True`` keeps sweeping to census *every*
    matching modulus; ``limit`` caps the number of candidates probed either
    way — ``exhausted`` reports whether the census actually completed.

    ``prepass`` gates the structural pre-reduction (None defers to
    ``REPRO_PREPASS``). It runs *once* before the sweep, not per candidate:
    the canonical circuit is field-independent, and probing it means an
    obfuscated netlist's sweep hits the same cache entries a clean (or
    differently obfuscated) copy of the design populated.
    """
    if spec_form not in SPEC_FORMS:
        raise ValueError(
            f"unknown spec form {spec_form!r}; expected one of {sorted(SPEC_FORMS)}"
        )
    if degree is None:
        degree = infer_degree(circuit)
    if degree < 2:
        raise ValueError("field degree must be >= 2 for polynomial recovery")
    words = probe_words(circuit)
    if len(words) < SPEC_FORMS[spec_form]:
        raise ValueError(
            f"spec form {spec_form!r} needs {SPEC_FORMS[spec_form]} input "
            f"word(s), circuit {circuit.name!r} has {len(words)}"
        )

    start = time.perf_counter()
    probe_circuit = circuit
    if resolve_prepass(prepass):
        with span("prepass", gates=circuit.num_gates()):
            try:
                probe_circuit = apply_prepass(circuit).circuit
            except PrepassError:
                probe_circuit = circuit  # guard tripped: sweep the raw netlist
    metrics.counter_add(metrics.REVENG_SWEEPS, 1)
    matches: List[int] = []
    probes: List[ProbeRecord] = []
    exhausted = True
    candidates = irreducible_polynomials(degree)
    if limit is not None:
        if limit < 1:
            raise ValueError("candidate limit must be >= 1")
        candidates = islice(candidates, limit)

    with span("reveng_sweep", degree=degree, form=spec_form):
        probed = 0
        for modulus in candidates:
            field = GF2m(degree, modulus=modulus)
            polynomial, record = probe_canonical(
                probe_circuit,
                field,
                case2=case2,
                cache=cache,
                jobs=jobs,
                inflight=inflight,
            )
            probed += 1
            expected = build_form(
                spec_form, field, word_ring_for(field, words), words
            )
            matched = polynomial == expected
            record.extra["matched"] = matched
            probes.append(record)
            if matched:
                matches.append(modulus)
                metrics.counter_add(metrics.REVENG_MATCHES, 1)
                if not all_candidates:
                    exhausted = False
                    break
        else:
            # Swept every candidate the iterator produced; with a ``limit``
            # the census may still be incomplete.
            if limit is not None and probed >= limit:
                exhausted = False

    return RevengResult(
        degree=degree,
        spec_form=spec_form,
        matches=matches,
        candidates_tried=len(probes),
        cache_hits=sum(1 for record in probes if record.cache_hit),
        seconds=time.perf_counter() - start,
        exhausted=exhausted,
        probes=probes,
    )
