"""Library of known arithmetic spec forms for reverse engineering.

A canonical word-level polynomial is a complete functional fingerprint of a
netlist (Cor. 4.1 uniqueness), so recognising *what* an unknown circuit
computes reduces to comparing its canonical polynomial against the
polynomials of known arithmetic functions — the word-level analogue of the
arithmetic-function extraction of Yu et al. (arXiv:1802.06870). The forms
here cover everything the :mod:`repro.synth` generators emit:

========================  ======================================  =======
form                      canonical polynomial                     words
========================  ======================================  =======
``mul``                   ``Z = A * B``                            2
``montgomery_mul``        ``Z = R^{-1} * A * B`` (``R = x^k``)     2
``add``                   ``Z = A + B``                            2
``square``                ``Z = A^2``                              1
``montgomery_square``     ``Z = R^{-1} * A^2``                     1
``identity``              ``Z = A``                                1
``inverse``               ``Z = A^(2^k - 2)`` (Fermat, 0 -> 0)     1
========================  ======================================  =======

:func:`match_forms` returns every form an extracted polynomial equals;
:func:`classify` gives a coarse structural label when nothing matches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..algebra import Polynomial, PolynomialRing
from ..core import word_ring_for
from ..gf import GF2m

__all__ = ["SPEC_FORMS", "build_form", "classify", "match_forms"]

#: form name -> number of input words it applies to.
SPEC_FORMS: Dict[str, int] = {
    "mul": 2,
    "montgomery_mul": 2,
    "add": 2,
    "square": 1,
    "montgomery_square": 1,
    "identity": 1,
    "inverse": 1,
}


def _r_inverse(field: GF2m) -> int:
    """``R^{-1}`` for the Montgomery radix ``R = x^k mod P``."""
    return field.inv(field.pow(field.alpha, field.k))


def build_form(
    name: str, field: GF2m, ring: PolynomialRing, words: Sequence[str]
) -> Polynomial:
    """The expected canonical polynomial of spec form ``name``.

    ``words`` are the circuit's input words in sorted order; binary forms
    use the first two, unary forms the first one.
    """
    if name not in SPEC_FORMS:
        raise ValueError(
            f"unknown spec form {name!r}; expected one of {sorted(SPEC_FORMS)}"
        )
    if len(words) < SPEC_FORMS[name]:
        raise ValueError(
            f"spec form {name!r} needs {SPEC_FORMS[name]} input word(s), "
            f"circuit has {len(words)}"
        )
    a = ring.var(words[0])
    if name == "mul":
        return a * ring.var(words[1])
    if name == "montgomery_mul":
        return (a * ring.var(words[1])).scale(_r_inverse(field))
    if name == "add":
        return a + ring.var(words[1])
    if name == "square":
        return a * a
    if name == "montgomery_square":
        return (a * a).scale(_r_inverse(field))
    if name == "identity":
        return a
    # inverse: x^(2^k - 2) agrees with 1/x on F* and maps 0 to 0 — the
    # convention every hardware inverter (Itoh-Tsujii included) implements.
    return ring.var(words[0], field.order - 2)


def applicable_forms(num_words: int) -> List[str]:
    """Spec forms whose arity matches a circuit with ``num_words`` inputs."""
    return [name for name, arity in SPEC_FORMS.items() if arity == num_words]


def match_forms(
    polynomial: Polynomial,
    field: GF2m,
    words: Sequence[str],
    forms: Sequence[str] = (),
) -> List[str]:
    """Every spec form (from ``forms``, default all applicable) that
    ``polynomial`` equals. Forms whose arity exceeds the circuit's word
    count are skipped silently so callers can pass a fixed probe list."""
    words = list(words)
    candidates = list(forms) if forms else applicable_forms(len(words))
    ring = word_ring_for(field, words)
    matched = []
    for name in candidates:
        if name not in SPEC_FORMS:
            raise ValueError(
                f"unknown spec form {name!r}; expected one of {sorted(SPEC_FORMS)}"
            )
        if SPEC_FORMS[name] > len(words):
            continue
        if polynomial == build_form(name, field, ring, words):
            matched.append(name)
    return matched


def classify(polynomial: Polynomial) -> str:
    """Coarse structural label for an unidentified canonical polynomial.

    ``constant`` / ``linearized`` (an F2-linear map: every monomial is a
    single word raised to a power of two) / ``affine`` (linearized plus a
    constant) / ``quadratic`` (total degree-in-words <= 2 in the
    power-of-two exponent sense, e.g. the cross terms a Mastrovito array
    produces under a wrong modulus) / ``nonlinear``.
    """
    if polynomial.is_zero() or not polynomial.variables_used():
        return "constant"
    has_constant = False
    linearized = True
    pow2_exponents = True
    max_factors = 0
    for monomial, _coeff in polynomial.terms.items():
        if not monomial:
            has_constant = True
            continue
        factors = 0
        for _var, exponent in monomial:
            factors += 1
            if exponent & (exponent - 1):  # not a power of two
                linearized = False
                pow2_exponents = False
        max_factors = max(max_factors, factors)
        if factors > 1:
            linearized = False
    if linearized and max_factors <= 1:
        return "affine" if has_constant else "linearized"
    if max_factors <= 2 and pow2_exponents:
        return "quadratic"
    return "nonlinear"
