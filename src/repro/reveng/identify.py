"""Identification of what arithmetic function an unknown netlist computes.

Given a netlist and its field (recover the field first with
:mod:`repro.reveng.polyrec` if unknown), extract the canonical polynomial
once and compare it against the library of known spec forms —
multiplication, Montgomery multiplication, addition, squaring, inversion
and friends (:mod:`repro.reveng.specforms`). Because the canonical
polynomial is a *complete* functional fingerprint, a match is a proof of
function, not a statistical guess: no amount of gate-level obfuscation
changes it, and two structurally unrelated multipliers (Mastrovito vs.
flattened Montgomery) identify identically.

When nothing in the library matches, the result still carries a coarse
structural classification of the polynomial (linearized / quadratic /
nonlinear) and its term count — enough to tell a permutation layer from a
scrambled S-box.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..gf import GF2m
from ..jobs.cache import CanonicalPolyCache
from ..obs import metrics, span
from ..prepass import PrepassError, apply_prepass, resolve_prepass
from .probe import ProbeRecord, probe_canonical, probe_words
from .specforms import classify, match_forms

__all__ = ["IdentifyResult", "identify_function"]

#: Polynomial strings longer than this are elided in result records.
_MAX_POLY_CHARS = 2000


@dataclass
class IdentifyResult:
    """Outcome of one function-identification probe."""

    matches: List[str]
    classification: str
    polynomial: str
    terms: int
    probe: ProbeRecord
    seconds: float

    @property
    def identified(self) -> Optional[str]:
        """The first matching spec form, or None when only classified."""
        return self.matches[0] if self.matches else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "identified": self.identified,
            "matches": list(self.matches),
            "classification": self.classification,
            "polynomial": self.polynomial,
            "terms": self.terms,
            "cache_hit": self.probe.cache_hit,
            "seconds": round(self.seconds, 6),
        }


def identify_function(
    circuit: Circuit,
    field: GF2m,
    forms: Sequence[str] = (),
    case2: str = "linearized",
    cache: Optional[CanonicalPolyCache] = None,
    jobs: Optional[int] = None,
    inflight=None,
    prepass: Optional[bool] = None,
) -> IdentifyResult:
    """Match ``circuit``'s canonical polynomial against known spec forms.

    ``forms`` restricts the library to specific names (default: every form
    whose arity matches the circuit's input word count). All matching forms
    are reported — e.g. over small fields ``square`` and ``mul`` can both
    hold when the circuit squares a word that is its only input. ``prepass``
    gates the structural pre-reduction (None defers to ``REPRO_PREPASS``);
    probing the canonical circuit means an obfuscated netlist identifies
    through the same cache entry as a clean copy.
    """
    start = time.perf_counter()
    words = probe_words(circuit)
    probe_circuit = circuit
    if resolve_prepass(prepass):
        with span("prepass", gates=circuit.num_gates()):
            try:
                probe_circuit = apply_prepass(circuit).circuit
            except PrepassError:
                probe_circuit = circuit  # guard tripped: probe the raw netlist
    with span("reveng_identify", k=field.k):
        polynomial, record = probe_canonical(
            probe_circuit, field, case2=case2, cache=cache, jobs=jobs, inflight=inflight
        )
        matches = match_forms(polynomial, field, words, forms=forms)
    if matches:
        metrics.counter_add(metrics.REVENG_IDENTIFICATIONS, 1)
    text = str(polynomial)
    if len(text) > _MAX_POLY_CHARS:
        text = text[:_MAX_POLY_CHARS] + f"... [{len(polynomial)} terms]"
    return IdentifyResult(
        matches=matches,
        classification=classify(polynomial),
        polynomial=text,
        terms=len(polynomial),
        probe=record,
        seconds=time.perf_counter() - start,
    )
