"""Cache-aware canonical-polynomial probes for reverse engineering.

Every reveng engine asks the same primitive question many times: *what is
the canonical polynomial of this netlist over GF(2^m) with modulus P?* A
recovery sweep asks it once per candidate modulus; an identification run
asks it once. Each answer routes through the content-addressed
:class:`~repro.jobs.cache.CanonicalPolyCache`, so repeating a sweep — or
probing an already-verified design — is nearly free: the cache key is a
pure function of (netlist structure, modulus, case2), exactly the tuple a
probe varies.

Probes tick both the shared ``cache.*`` counters and the reveng-specific
``reveng.candidates_probed`` / ``reveng.cache_hits`` counters, so
``/metrics`` distinguishes sweep traffic from ordinary verification
traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from ..algebra import Polynomial
from ..circuits import Circuit
from ..core import extract_canonical
from ..gf import GF2m
from ..jobs.cache import (
    CanonicalPolyCache,
    canonical_cache_key,
    polynomial_payload,
    rehydrate_polynomial,
)
from ..obs import metrics

__all__ = ["ProbeRecord", "probe_canonical", "probe_words"]


@dataclass
class ProbeRecord:
    """Cost accounting for one canonical-polynomial probe."""

    modulus: int
    cache_hit: bool
    seconds: float
    terms: int
    case: str = "1"
    extra: Dict[str, object] = dataclass_field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record = {
            "modulus": f"{self.modulus:#x}",
            "cache_hit": self.cache_hit,
            "seconds": round(self.seconds, 6),
            "terms": self.terms,
            "case": self.case,
        }
        record.update(self.extra)
        return record


def probe_canonical(
    circuit: Circuit,
    field: GF2m,
    case2: str = "linearized",
    output_word: Optional[str] = None,
    cache: Optional[CanonicalPolyCache] = None,
    jobs: Optional[int] = None,
    inflight=None,
) -> Tuple[Polynomial, ProbeRecord]:
    """Canonical polynomial of ``circuit`` under ``field``, cache-aware.

    Returns ``(polynomial, record)`` where the record carries the probe's
    cost (wall seconds, cache hit, term count). Mirrors the executor's
    ``_cached_canonical`` contract: ``inflight`` is an optional
    single-flight group for in-process dedup, ``jobs`` selects the
    cone-sliced parallel extraction path on a miss.
    """
    start = time.perf_counter()

    def compute() -> Dict:
        result = extract_canonical(
            circuit, field, output_word=output_word, case2=case2, jobs=jobs
        )
        return polynomial_payload(result)

    def compute_cached() -> Tuple[Dict, bool]:
        if cache is None:
            return compute(), False
        return cache.get_or_compute(key, compute)

    if cache is None and inflight is None:
        payload, hit = compute(), False
    else:
        key = canonical_cache_key(
            circuit, field, case2=case2, output_word=output_word
        )
        if inflight is None:
            payload, hit = cache.get_or_compute(key, compute)
        else:
            (payload, hit), shared = inflight.do(key, compute_cached)
            hit = hit or shared
    polynomial = rehydrate_polynomial(payload, field)

    metrics.counter_add(metrics.CACHE_HITS if hit else metrics.CACHE_MISSES, 1)
    metrics.counter_add(metrics.REVENG_CANDIDATES_PROBED, 1)
    if hit:
        metrics.counter_add(metrics.REVENG_CACHE_HITS, 1)
    record = ProbeRecord(
        modulus=field.modulus,
        cache_hit=hit,
        seconds=time.perf_counter() - start,
        terms=len(polynomial),
        case=str(payload["stats"]["case"]),
    )
    return polynomial, record


def probe_words(circuit: Circuit) -> List[str]:
    """The circuit's input words in the canonical (sorted) probe order."""
    return sorted(circuit.input_words)
