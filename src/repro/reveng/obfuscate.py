"""Semantics-preserving netlist obfuscation and the robustness suite.

The word-level abstraction is a *functional* fingerprint: any rewriting
that preserves each output bit's Boolean function leaves the canonical
polynomial — and therefore polynomial recovery and function
identification — untouched. This module generates such rewritings at
netlist scale, layering the in-place primitives of
:mod:`repro.circuits.mutate` into whole-circuit passes:

``demorgan``
    Re-encode AND/OR/NAND/NOR gates through their De Morgan duals.
``xor_expand``
    Replace 2-input XOR/XNOR gates with AND/OR/NOT networks.
``dead_logic``
    Inject gates that drive nothing (fake structure).
``buffer_chains``
    Interpose BUF and double-inverter hops on random gate inputs.
``rename``
    Rename every internal net to an opaque identifier (primary inputs
    keep their names — they are the probe's word interface).
``shuffle``
    Re-emit gates in a random declaration order.

Every pass takes an explicit ``rng`` so variant generation is
reproducible. Note the cache interaction: ``shuffle`` does **not** change
the content-address of the netlist (normalization sorts gates), while the
other passes do — an obfuscated variant is a genuinely new abstraction
problem, which is exactly what the robustness harness wants to measure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..circuits import Circuit
from ..circuits.gates import GateType
from ..circuits.mutate import (
    add_dead_gate,
    demorgan_gate,
    expand_xor_gate,
    insert_buffer,
    insert_inverter_pair,
)
from ..obs import metrics

__all__ = [
    "OBFUSCATION_PASSES",
    "ObfuscatedVariant",
    "obfuscate",
    "obfuscation_suite",
]


def _pass_demorgan(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    eligible = [
        gate.output
        for gate in circuit.gates
        if gate.gate_type
        in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR)
    ]
    for net in _sample_fraction(eligible, rng, fraction):
        demorgan_gate(circuit, net)
    return circuit


def _pass_xor_expand(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    eligible = [
        gate.output
        for gate in circuit.gates
        if gate.gate_type in (GateType.XOR, GateType.XNOR) and len(gate.inputs) == 2
    ]
    for net in _sample_fraction(eligible, rng, fraction):
        expand_xor_gate(circuit, net)
    return circuit


def _pass_dead_logic(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    count = max(1, int(circuit.num_gates() * fraction * 0.25))
    for _ in range(count):
        add_dead_gate(circuit, rng=rng)
    return circuit


def _pass_buffer_chains(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    targets = [
        (gate.output, position)
        for gate in circuit.gates
        for position in range(len(gate.inputs))
    ]
    for net, position in _sample_fraction(targets, rng, fraction * 0.5):
        if rng.random() < 0.5:
            insert_buffer(circuit, net, position)
        else:
            insert_inverter_pair(circuit, net, position)
    return circuit


def _pass_rename(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    del fraction  # renaming is all-or-nothing: partial renames help nobody
    internal = [gate.output for gate in circuit.gates]
    shuffled = list(internal)
    rng.shuffle(shuffled)
    taken = set(circuit.inputs)
    mapping: Dict[str, str] = {}
    for index, net in enumerate(shuffled):
        opaque = f"t{index:04d}"
        while opaque in taken:
            opaque = f"t{index:04d}_{rng.randrange(1 << 16):x}"
        taken.add(opaque)
        mapping[net] = opaque

    def r(net: str) -> str:
        return mapping.get(net, net)

    renamed = Circuit(circuit.name)
    renamed.add_inputs(circuit.inputs)
    for gate in circuit.gates:
        renamed.add_gate(r(gate.output), gate.gate_type, [r(n) for n in gate.inputs])
    renamed.set_outputs([r(n) for n in circuit.outputs])
    renamed.input_words = {w: list(b) for w, b in circuit.input_words.items()}
    renamed.output_words = {
        w: [r(b) for b in bits] for w, bits in circuit.output_words.items()
    }
    return renamed


def _pass_shuffle(circuit: Circuit, rng: random.Random, fraction: float) -> Circuit:
    del fraction  # declaration order is one permutation; shuffle all of it
    gates = circuit.gates
    rng.shuffle(gates)
    shuffled = Circuit(circuit.name)
    shuffled.add_inputs(circuit.inputs)
    for gate in gates:
        shuffled.add_gate(gate.output, gate.gate_type, gate.inputs)
    shuffled.set_outputs(circuit.outputs)
    shuffled.input_words = {w: list(b) for w, b in circuit.input_words.items()}
    shuffled.output_words = {w: list(b) for w, b in circuit.output_words.items()}
    return shuffled


def _sample_fraction(population: Sequence, rng: random.Random, fraction: float) -> List:
    if not population:
        return []
    fraction = min(max(fraction, 0.0), 1.0)
    count = max(1, round(len(population) * fraction)) if fraction > 0 else 0
    return rng.sample(list(population), min(count, len(population)))


#: Pass name -> implementation, in the order :func:`obfuscate` applies them.
OBFUSCATION_PASSES: "Dict[str, Callable[[Circuit, random.Random, float], Circuit]]" = {
    "demorgan": _pass_demorgan,
    "xor_expand": _pass_xor_expand,
    "dead_logic": _pass_dead_logic,
    "buffer_chains": _pass_buffer_chains,
    "rename": _pass_rename,
    "shuffle": _pass_shuffle,
}


@dataclass
class ObfuscatedVariant:
    """One semantics-preserving variant plus its growth accounting."""

    name: str
    passes: List[str]
    circuit: Circuit
    gates_before: int
    gates_after: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "passes": list(self.passes),
            "gates_before": self.gates_before,
            "gates_after": self.gates_after,
            "growth": round(self.gates_after / max(self.gates_before, 1), 3),
        }


def obfuscate(
    circuit: Circuit,
    passes: Optional[Sequence[str]] = None,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    fraction: float = 1.0,
    name: Optional[str] = None,
) -> ObfuscatedVariant:
    """Apply obfuscation ``passes`` (default: all, in library order).

    The input circuit is never mutated — passes run on a clone. ``fraction``
    scales how much of each pass's eligible population is rewritten.
    Randomness comes from ``rng`` (or the convenience ``seed``, default 0):
    variant generation is deterministic unless the caller opts out by
    passing their own unseeded generator.
    """
    if rng is None:
        rng = random.Random(0 if seed is None else seed)
    selected = list(passes) if passes is not None else list(OBFUSCATION_PASSES)
    for pass_name in selected:
        if pass_name not in OBFUSCATION_PASSES:
            raise ValueError(
                f"unknown obfuscation pass {pass_name!r}; "
                f"expected one of {sorted(OBFUSCATION_PASSES)}"
            )
    before = circuit.num_gates()
    variant_name = name or f"{circuit.name}_obf"
    working = circuit.clone(variant_name)
    for pass_name in selected:
        working = OBFUSCATION_PASSES[pass_name](working, rng, fraction)
    working.validate()
    metrics.counter_add(metrics.REVENG_OBFUSCATION_VARIANTS, 1)
    metrics.counter_add(
        metrics.REVENG_OBFUSCATION_GATES_ADDED,
        max(0, working.num_gates() - before),
    )
    return ObfuscatedVariant(
        name=variant_name,
        passes=selected,
        circuit=working,
        gates_before=before,
        gates_after=working.num_gates(),
    )


def obfuscation_suite(
    circuit: Circuit,
    seed: int = 0,
    fraction: float = 1.0,
) -> List[ObfuscatedVariant]:
    """One variant per pass plus a ``stacked`` variant applying all of them.

    This is the robustness corpus the harness and CI smoke run recovery
    against: each variant is simulation-equivalent to ``circuit`` by
    construction, and each stresses a different normalization assumption
    (gate re-encoding, structural growth, naming, ordering).
    """
    variants = [
        obfuscate(
            circuit,
            passes=[pass_name],
            seed=seed + index,
            fraction=fraction,
            name=f"{circuit.name}_{pass_name}",
        )
        for index, pass_name in enumerate(OBFUSCATION_PASSES)
    ]
    variants.append(
        obfuscate(
            circuit,
            seed=seed + len(OBFUSCATION_PASSES),
            fraction=fraction,
            name=f"{circuit.name}_stacked",
        )
    )
    return variants
