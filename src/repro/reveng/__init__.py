"""Reverse engineering of Galois-field netlists via word-level abstraction.

The abstraction engine answers "what polynomial function does this netlist
compute?" — which makes it a reverse-engineering instrument, not just a
verifier. Three engines build on that:

- :mod:`repro.reveng.polyrec` — recover an undocumented field polynomial
  ``P(x)`` by sweeping candidate irreducibles (lowest weight first) until
  the canonical polynomial collapses to the spec form,
- :mod:`repro.reveng.identify` — identify which arithmetic function
  (multiplication, squaring, inversion, ...) an unknown netlist computes by
  matching its canonical polynomial against a spec-form library,
- :mod:`repro.reveng.obfuscate` — generate semantics-preserving obfuscated
  variants (De Morgan re-encoding, dead logic, renaming, ...) and show that
  both engines are untouched by them.

Exposed as ``repro reveng {poly,func,obfuscate}`` on the CLI, as the
``reveng`` batch-manifest job type, and as ``POST /v1/reveng`` on the
verification service.
"""

from .identify import IdentifyResult, identify_function
from .obfuscate import (
    OBFUSCATION_PASSES,
    ObfuscatedVariant,
    obfuscate,
    obfuscation_suite,
)
from .polyrec import RevengResult, infer_degree, recover_polynomial
from .probe import ProbeRecord, probe_canonical
from .specforms import SPEC_FORMS, applicable_forms, build_form, classify, match_forms

__all__ = [
    "IdentifyResult",
    "identify_function",
    "OBFUSCATION_PASSES",
    "ObfuscatedVariant",
    "obfuscate",
    "obfuscation_suite",
    "RevengResult",
    "infer_degree",
    "recover_polynomial",
    "ProbeRecord",
    "probe_canonical",
    "SPEC_FORMS",
    "applicable_forms",
    "build_form",
    "classify",
    "match_forms",
]
