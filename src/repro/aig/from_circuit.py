"""Convert gate-level circuits into AIGs."""

from __future__ import annotations

from functools import reduce
from typing import Dict, Optional, Tuple

from ..circuits import Circuit, GateType
from .graph import FALSE_LIT, TRUE_LIT, Aig

__all__ = ["circuit_to_aig"]


def circuit_to_aig(
    circuit: Circuit,
    aig: Optional[Aig] = None,
    input_lits: Optional[Dict[str, int]] = None,
) -> Tuple[Aig, Dict[str, int]]:
    """Build an AIG for ``circuit``; returns ``(aig, net -> literal)``.

    Passing an existing ``aig`` plus ``input_lits`` maps this circuit onto
    shared inputs — the joint-AIG construction the SAT sweeper uses for
    combinational equivalence checking.
    """
    aig = aig if aig is not None else Aig()
    lits: Dict[str, int] = {}
    for net in circuit.inputs:
        if input_lits is not None and net in input_lits:
            lits[net] = input_lits[net]
        else:
            lits[net] = aig.add_input()

    for gate in circuit.topological_order():
        ins = [lits[n] for n in gate.inputs]
        gate_type = gate.gate_type
        if gate_type is GateType.AND:
            value = reduce(aig.and_gate, ins)
        elif gate_type is GateType.OR:
            value = reduce(aig.or_gate, ins)
        elif gate_type is GateType.XOR:
            value = reduce(aig.xor_gate, ins)
        elif gate_type is GateType.NAND:
            value = aig.negate(reduce(aig.and_gate, ins))
        elif gate_type is GateType.NOR:
            value = aig.negate(reduce(aig.or_gate, ins))
        elif gate_type is GateType.XNOR:
            value = aig.negate(reduce(aig.xor_gate, ins))
        elif gate_type is GateType.NOT:
            value = aig.negate(ins[0])
        elif gate_type is GateType.BUF:
            value = ins[0]
        elif gate_type is GateType.CONST0:
            value = FALSE_LIT
        elif gate_type is GateType.CONST1:
            value = TRUE_LIT
        else:
            raise ValueError(f"unknown gate type {gate_type!r}")
        lits[gate.output] = value
    return aig, lits
