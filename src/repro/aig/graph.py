"""And-Inverter Graphs with structural hashing.

The internal representation of modern equivalence checkers (the paper's
ABC baseline [4]): every function is a DAG of 2-input AND nodes and edge
inverters. Literals are ints — ``2*node + complement`` — node 0 is the
constant false, so literal 0 is FALSE and literal 1 is TRUE. Structural
hashing merges syntactically identical AND nodes on construction, and the
one-level rewrite rules fold constants and shared children.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["Aig", "FALSE_LIT", "TRUE_LIT"]

FALSE_LIT = 0
TRUE_LIT = 1


class Aig:
    """A hash-consed And-Inverter Graph."""

    def __init__(self) -> None:
        # fanins[node] = (left_lit, right_lit); inputs and the constant
        # node have no fanins (None entry).
        self.fanins: List[Optional[Tuple[int, int]]] = [None]  # node 0: const
        self.inputs: List[int] = []  # node indices of primary inputs
        self._strash: Dict[Tuple[int, int], int] = {}

    # -- literal helpers -------------------------------------------------------

    @staticmethod
    def lit(node: int, complement: bool = False) -> int:
        return 2 * node + int(complement)

    @staticmethod
    def node_of(lit: int) -> int:
        return lit >> 1

    @staticmethod
    def is_complemented(lit: int) -> bool:
        return bool(lit & 1)

    @staticmethod
    def negate(lit: int) -> int:
        return lit ^ 1

    # -- construction ----------------------------------------------------------

    def add_input(self) -> int:
        """Create a primary input; returns its (positive) literal."""
        node = len(self.fanins)
        self.fanins.append(None)
        self.inputs.append(node)
        return self.lit(node)

    def and_gate(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and strashing."""
        if a > b:
            a, b = b, a
        if a == FALSE_LIT:
            return FALSE_LIT
        if a == TRUE_LIT:
            return b
        if a == b:
            return a
        if a == self.negate(b):
            return FALSE_LIT
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self.fanins)
            self.fanins.append(key)
            self._strash[key] = node
        return self.lit(node)

    def or_gate(self, a: int, b: int) -> int:
        return self.negate(self.and_gate(self.negate(a), self.negate(b)))

    def xor_gate(self, a: int, b: int) -> int:
        return self.or_gate(
            self.and_gate(a, self.negate(b)), self.and_gate(self.negate(a), b)
        )

    def mux(self, sel: int, then_lit: int, else_lit: int) -> int:
        return self.or_gate(
            self.and_gate(sel, then_lit),
            self.and_gate(self.negate(sel), else_lit),
        )

    # -- inspection --------------------------------------------------------------

    def num_nodes(self) -> int:
        return len(self.fanins)

    def num_ands(self) -> int:
        return sum(1 for f in self.fanins if f is not None)

    def is_input_node(self, node: int) -> bool:
        return self.fanins[node] is None and node != 0

    def and_nodes(self) -> List[int]:
        """AND node indices in topological (creation) order."""
        return [n for n, f in enumerate(self.fanins) if f is not None]

    # -- evaluation --------------------------------------------------------------

    def simulate(self, input_values: Dict[int, int], mask: int = 1) -> List[int]:
        """Bit-parallel node values; ``input_values`` keyed by input node."""
        values = [0] * len(self.fanins)
        for node in self.inputs:
            values[node] = input_values.get(node, 0) & mask

        def lit_value(lit: int) -> int:
            v = values[lit >> 1]
            return (mask & ~v) if lit & 1 else v

        for node, fanin in enumerate(self.fanins):
            if fanin is not None:
                values[node] = lit_value(fanin[0]) & lit_value(fanin[1])
        return values

    def lit_value(self, values: List[int], lit: int, mask: int = 1) -> int:
        v = values[lit >> 1]
        return (mask & ~v) if lit & 1 else v

    def cone_size(self, lit: int) -> int:
        """Number of AND nodes in the transitive fanin of ``lit``."""
        seen = set()
        stack = [lit >> 1]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            fanin = self.fanins[node]
            if fanin is not None:
                stack.extend((fanin[0] >> 1, fanin[1] >> 1))
        return sum(1 for n in seen if self.fanins[n] is not None)

    def __repr__(self) -> str:
        return f"Aig(inputs={len(self.inputs)}, ands={self.num_ands()})"
