"""Fraiging-style SAT sweeping on AIGs.

The strategy of modern CEC engines (ABC's ``fraig``/``cec`` [4]):

1. simulate the AIG on random patterns; nodes with equal (or complemented)
   signatures form candidate equivalence classes;
2. sweep nodes in topological order — each candidate is checked against its
   class representative with a bounded SAT query on the (already merged)
   cones; proven nodes are *merged*, so later cones shrink;
3. SAT counterexamples become new simulation patterns that split classes.

On structurally similar designs most internal nodes merge and equivalence
falls out almost for free; on structurally dissimilar ones (Mastrovito vs.
Montgomery) no internal equivalences exist, the sweep degenerates, and the
final miter query is as hard as monolithic SAT — which is precisely the
paper's observation about why these tools fail on its benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..sat import CNF, SatSolver
from .graph import FALSE_LIT, TRUE_LIT, Aig

__all__ = ["SweepResult", "sat_sweep", "prove_lit_equal"]

_PATTERN_BITS = 64


class SweepResult:
    """Outcome of a sweep: merge map plus statistics."""

    __slots__ = (
        "canon",
        "merged",
        "queries",
        "sat_refuted",
        "unknown",
        "patterns_used",
    )

    def __init__(self, canon: Dict[int, int]):
        self.canon = canon  # node -> canonical literal
        self.merged = 0
        self.queries = 0
        self.sat_refuted = 0
        self.unknown = 0
        self.patterns_used = 0

    def canon_lit(self, lit: int) -> int:
        """Canonical literal for an arbitrary literal."""
        base = self.canon.get(lit >> 1, lit & ~1)
        return base ^ (lit & 1)


def _canon_lit(canon: Dict[int, int], lit: int) -> int:
    base = canon.get(lit >> 1, lit & ~1)
    return base ^ (lit & 1)


def _encode_cone(
    aig: Aig, canon: Dict[int, int], roots: List[int]
) -> Tuple[CNF, Dict[int, int]]:
    """Tseitin-encode the merged cones of ``roots``; returns (cnf, node->var)."""
    cnf = CNF()
    var_of: Dict[int, int] = {}

    def visit(lit: int) -> int:
        """DIMACS literal for an AIG literal (through the merge map)."""
        lit = _canon_lit(canon, lit)
        if lit == FALSE_LIT or lit == TRUE_LIT:
            if 0 not in var_of:
                var_of[0] = cnf.new_var()
                cnf.add_clause((-var_of[0],))  # node 0 is constant false
            dimacs = var_of[0]
        else:
            node = lit >> 1
            if node not in var_of:
                var_of[node] = cnf.new_var()
                fanin = aig.fanins[node]
                if fanin is not None:
                    a = visit(fanin[0])
                    b = visit(fanin[1])
                    z = var_of[node]
                    cnf.add_clause((-z, a))
                    cnf.add_clause((-z, b))
                    cnf.add_clause((z, -a, -b))
            dimacs = var_of[node]
        return -dimacs if lit & 1 else dimacs

    for root in roots:
        visit(root)
    return cnf, var_of


def prove_lit_equal(
    aig: Aig,
    canon: Dict[int, int],
    lit_a: int,
    lit_b: int,
    max_conflicts: Optional[int] = None,
) -> Tuple[str, Optional[Dict[int, int]]]:
    """SAT-check two literals for equality through the merge map.

    Returns ``("equal", None)``, ``("diff", {input node: 0/1})`` or
    ``("unknown", None)`` when the conflict budget runs out.
    """
    lit_a = _canon_lit(canon, lit_a)
    lit_b = _canon_lit(canon, lit_b)
    if lit_a == lit_b:
        return "equal", None
    cnf, var_of = _encode_cone(aig, canon, [lit_a, lit_b])

    def dimacs(lit: int) -> int:
        node = lit >> 1
        if lit <= 1:
            node = 0
        var = var_of[node]
        return -var if lit & 1 else var

    # Miter: (a XOR b) must be satisfiable for a difference.
    t = cnf.new_var()
    a, b = dimacs(lit_a), dimacs(lit_b)
    cnf.add_clause((-t, a, b))
    cnf.add_clause((-t, -a, -b))
    cnf.add_clause((t,))
    result = SatSolver(cnf).solve(max_conflicts=max_conflicts)
    if result.status == "unsat":
        return "equal", None
    if result.status == "unknown":
        return "unknown", None
    pattern = {
        node: int(result.model.get(var, False))
        for node, var in var_of.items()
        if aig.is_input_node(node)
    }
    return "diff", pattern


def sat_sweep(
    aig: Aig,
    max_conflicts_per_query: int = 200,
    num_random_patterns: int = 4,
    seed: int = 2014,
) -> SweepResult:
    """Merge provably equivalent AIG nodes (fraiging).

    Returns a :class:`SweepResult` whose ``canon`` maps merged nodes onto
    their representative literals.
    """
    rng = random.Random(seed)
    mask = (1 << _PATTERN_BITS) - 1
    stimuli = [
        {node: rng.getrandbits(_PATTERN_BITS) for node in aig.inputs}
        for _ in range(num_random_patterns)
    ]
    result = SweepResult({})
    canon = result.canon

    def signatures() -> Dict[int, int]:
        sigs: Dict[int, int] = {}
        shift = 0
        for stimulus in stimuli:
            values = aig.simulate(stimulus, mask)
            for node in range(len(aig.fanins)):
                sigs[node] = sigs.get(node, 0) | (values[node] << shift)
            shift += _PATTERN_BITS
        return sigs

    sigs = signatures()
    result.patterns_used = len(stimuli) * _PATTERN_BITS

    def class_key(node: int) -> int:
        sig = sigs[node]
        # Normalise polarity so a node and its complement share a key.
        total_mask = (1 << (len(stimuli) * _PATTERN_BITS)) - 1
        return sig if not (sig & 1) else (~sig) & total_mask

    classes: Dict[int, int] = {}  # key -> representative node
    classes[class_key(0)] = 0  # constant-false node seeds its class
    for node in aig.and_nodes():
        key = class_key(node)
        rep = classes.get(key)
        if rep is None:
            classes[key] = node
            continue
        # Same polarity if raw signatures match, else complemented.
        complemented = sigs[node] != sigs[rep]
        rep_lit = _canon_lit(canon, (rep << 1) | int(complemented))
        result.queries += 1
        status, pattern = prove_lit_equal(
            aig, canon, node << 1, rep_lit, max_conflicts_per_query
        )
        if status == "equal":
            canon[node] = rep_lit
            result.merged += 1
        elif status == "diff":
            result.sat_refuted += 1
            full = dict(stimuli[0])
            for in_node, bit in pattern.items():
                full[in_node] = (full[in_node] & ~1) | bit
            stimuli[0] = full
            sigs = signatures()  # refine classes with the witness pattern
            classes = {class_key(0): 0}
            # Re-seed classes with already processed unmerged nodes.
            for processed in aig.and_nodes():
                if processed >= node:
                    break
                if processed in canon:
                    continue
                classes.setdefault(class_key(processed), processed)
            key = class_key(node)
            classes.setdefault(key, node)
        else:
            result.unknown += 1
    return result
