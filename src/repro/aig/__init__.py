"""AIG substrate: and-inverter graphs, strashing, fraiging-style sweeping."""

from .from_circuit import circuit_to_aig
from .graph import FALSE_LIT, TRUE_LIT, Aig
from .sweep import SweepResult, prove_lit_equal, sat_sweep

__all__ = [
    "Aig",
    "FALSE_LIT",
    "TRUE_LIT",
    "circuit_to_aig",
    "sat_sweep",
    "prove_lit_equal",
    "SweepResult",
]
