"""Interpolation oracle: canonical polynomials by exhaustive evaluation."""

from .lagrange import indicator_polynomial, interpolate, interpolate_univariate

__all__ = ["interpolate", "interpolate_univariate", "indicator_polynomial"]
