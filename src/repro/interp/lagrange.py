"""Lagrange interpolation of functions over F_{2^k}.

Section 1 notes the canonical polynomial can in principle be derived by
Lagrange interpolation, "however this requires analysing f over the entire
field, which is exhaustive and infeasible" for large k. At *small* k it is
perfectly feasible — and that makes it the ideal ground-truth oracle for the
abstraction engine: interpolate the simulated circuit and compare canonical
polynomials coefficient by coefficient.

Univariate: ``F(X) = sum_a f(a) * (1 - (X - a)^(q-1))`` using that
``(X-a)^(q-1)`` is 1 exactly off ``a``. Multivariate: tensor products of the
same indicator polynomials, built iteratively per variable.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Callable, Dict, List, Sequence, Tuple

from ..algebra import LexOrder, Polynomial, PolynomialRing
from ..gf import GF2m

__all__ = ["interpolate_univariate", "interpolate", "indicator_polynomial"]


def indicator_polynomial(ring: PolynomialRing, name: str, point: int) -> Polynomial:
    """The polynomial that is 1 at ``var == point`` and 0 elsewhere.

    ``1 - (X - a)^(q-1)`` expanded to canonical degree ``q-1``.
    """
    field = ring.field
    x_minus_a = ring.var(name) + ring.constant(point)
    return ring.one() + x_minus_a ** (field.order - 1)


def interpolate_univariate(
    field: GF2m, values: Sequence[int], name: str = "A"
) -> Polynomial:
    """Canonical polynomial with ``F(a) = values[a]`` for every ``a`` in F_q."""
    if len(values) != field.order:
        raise ValueError(f"need {field.order} values, got {len(values)}")
    ring = PolynomialRing(field, [name], order=LexOrder([0]))
    result = ring.zero()
    for a, fa in enumerate(values):
        if fa:
            result = result + indicator_polynomial(ring, name, a).scale(fa)
    return result


def interpolate(
    field: GF2m,
    function: Callable[..., int],
    names: Sequence[str],
) -> Polynomial:
    """Canonical polynomial of ``f : F_q^n -> F_q`` given as a callable.

    Exhausts the full domain (``q^n`` evaluations) — use only at small
    ``k * n``. The result lives in a fold-enabled lex ring over ``names``,
    matching the rings produced by the abstraction engine so polynomials
    compare directly.
    """
    n = len(names)
    domain_size = field.order ** n
    if domain_size > 1 << 22:
        raise ValueError(
            f"interpolation over {domain_size} points is infeasible; "
            "this oracle is for small fields only"
        )
    ring = PolynomialRing(field, list(names), order=LexOrder(range(n)))
    # Precompute per-variable indicators once: q polynomials per variable.
    indicators: List[List[Polynomial]] = [
        [indicator_polynomial(ring, name, a) for a in range(field.order)]
        for name in names
    ]
    result = ring.zero()
    for point in cartesian_product(range(field.order), repeat=n):
        value = function(*point)
        if not value:
            continue
        term = ring.constant(value)
        for var_index, coordinate in enumerate(point):
            term = term * indicators[var_index][coordinate]
            if term.is_zero():
                break
        result = result + term
    return result
