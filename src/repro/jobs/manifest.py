"""Batch manifest: a JSON description of verification jobs.

A manifest names a list of jobs plus optional shared defaults::

    {
      "defaults": {"k": 16, "timeout": 120, "retries": 1, "case2": "linearized"},
      "jobs": [
        {"id": "m16", "type": "verify", "spec": "spec.v", "impl": "impl.v"},
        {"type": "abstract", "netlist": "impl.v", "k": 16},
        {"type": "check-spec", "netlist": "impl.v", "spec_poly": "A*B"}
      ]
    }

Job types:

``verify``
    Abstract ``spec`` and ``impl`` to canonical polynomials and
    coefficient-match (the paper's flow). Fields: ``spec``, ``impl``,
    ``k``; optional ``modulus``, ``case2``, ``seed``, ``prepass``.
``abstract``
    Derive one circuit's canonical polynomial. Fields: ``netlist``, ``k``;
    optional ``modulus``, ``case2``, ``output_word``, ``prepass``.
``check-spec``
    Lv-style ideal membership against a textual spec polynomial. Fields:
    ``netlist``, ``spec_poly``, ``k``; optional ``modulus``, ``output_word``.
``reveng``
    Reverse engineering. ``mode: "poly"`` (the default) sweeps candidate
    irreducibles to recover an unknown field polynomial — fields:
    ``netlist``; optional ``m`` (degree, inferred from word widths when
    omitted), ``spec_form``, ``all`` (census every match), ``limit``.
    ``mode: "func"`` identifies which arithmetic function the netlist
    computes over a *known* field — fields: ``netlist``, ``k``; optional
    ``modulus``, ``forms``. Both accept ``case2``, ``jobs`` and
    ``prepass`` (a boolean overriding the structural pre-reduction's
    ``REPRO_PREPASS`` default, accepted by verify/abstract too).
``sleep`` / ``crash``
    Operational self-test jobs: ``sleep`` blocks for ``seconds`` (exercises
    the per-job deadline), ``crash`` hard-exits the worker for its first
    ``fail_attempts`` attempts (exercises retry-on-crash accounting).

Relative netlist paths resolve against the manifest's directory, so a
manifest can live next to its netlists and be invoked from anywhere.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

__all__ = ["BatchJob", "BatchManifest", "ManifestError", "load_manifest", "manifest_from_dict"]

JOB_TYPES = ("verify", "abstract", "check-spec", "reveng", "sleep", "crash")

_REQUIRED_FIELDS = {
    "verify": ("spec", "impl", "k"),
    "abstract": ("netlist", "k"),
    "check-spec": ("netlist", "spec_poly", "k"),
    "reveng": ("netlist",),
    "sleep": ("seconds",),
    "crash": (),
}

_PATH_FIELDS = ("spec", "impl", "netlist")

#: Per-type optional fields (beyond the engine-level timeout/retries/seed).
_OPTIONAL_FIELDS = {
    "verify": ("modulus", "case2", "jobs", "prepass"),
    "abstract": ("modulus", "case2", "output_word", "jobs", "prepass"),
    "check-spec": ("modulus", "output_word"),
    # "k"/"modulus" matter in func mode (known field); "m" in poly mode
    # (unknown field, degree only). Mode-dependent requirements are checked
    # at execution time, not manifest-load time.
    "reveng": (
        "mode", "m", "k", "modulus", "case2", "spec_form", "forms", "all",
        "limit", "jobs", "prepass",
    ),
    "sleep": (),
    "crash": ("fail_attempts",),
}

_ENGINE_FIELDS = ("id", "type", "timeout", "retries", "seed")


class ManifestError(ValueError):
    """Malformed batch manifest."""


@dataclass
class BatchJob:
    """One unit of work for the batch engine."""

    id: str
    type: str
    params: Dict = dataclass_field(default_factory=dict)
    timeout: Optional[float] = None
    retries: int = 1
    seed: Optional[int] = None

    def to_dict(self) -> Dict:
        return {
            "id": self.id,
            "type": self.type,
            "params": dict(self.params),
            "timeout": self.timeout,
            "retries": self.retries,
            "seed": self.seed,
        }


@dataclass
class BatchManifest:
    """A parsed manifest: jobs with defaults applied and paths resolved."""

    jobs: List[BatchJob]
    defaults: Dict = dataclass_field(default_factory=dict)
    path: Optional[str] = None

    def __len__(self) -> int:
        return len(self.jobs)


def _validate_job(raw: Dict, index: int) -> None:
    job_type = raw.get("type")
    if job_type not in JOB_TYPES:
        raise ManifestError(
            f"job #{index}: unknown type {job_type!r}; expected one of "
            f"{', '.join(JOB_TYPES)}"
        )
    for field_name in _REQUIRED_FIELDS[job_type]:
        if field_name not in raw:
            raise ManifestError(
                f"job #{index} ({job_type}): missing required field "
                f"{field_name!r}"
            )
    allowed = set(_ENGINE_FIELDS) | set(_REQUIRED_FIELDS[job_type]) | set(
        _OPTIONAL_FIELDS[job_type]
    )
    unknown = sorted(set(raw) - allowed)
    if unknown:
        raise ManifestError(
            f"job #{index} ({job_type}): unknown field(s) {', '.join(unknown)}"
        )


def manifest_from_dict(
    data: Dict, base_dir: Optional[str] = None, path: Optional[str] = None
) -> BatchManifest:
    """Build a :class:`BatchManifest` from decoded JSON."""
    if not isinstance(data, dict):
        raise ManifestError("manifest root must be a JSON object")
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise ManifestError("manifest must contain a non-empty 'jobs' list")
    defaults = data.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ManifestError("'defaults' must be a JSON object")

    jobs: List[BatchJob] = []
    seen_ids = set()
    for index, raw in enumerate(raw_jobs):
        if not isinstance(raw, dict):
            raise ManifestError(f"job #{index} must be a JSON object")
        merged = {**defaults, **raw}
        job_type = merged.get("type")
        # Defaults apply only where the type accepts the field (a shared
        # "k" default must not trip validation of a sleep job).
        if job_type in JOB_TYPES:
            allowed = (
                set(_ENGINE_FIELDS)
                | set(_REQUIRED_FIELDS[job_type])
                | set(_OPTIONAL_FIELDS[job_type])
            )
            merged = {
                k: v
                for k, v in merged.items()
                if k in allowed or k in raw
            }
        _validate_job(merged, index)
        job_id = str(merged.get("id") or f"job{index:03d}")
        if job_id in seen_ids:
            raise ManifestError(f"duplicate job id {job_id!r}")
        seen_ids.add(job_id)
        params = {
            k: v for k, v in merged.items() if k not in _ENGINE_FIELDS
        }
        if base_dir:
            for field_name in _PATH_FIELDS:
                value = params.get(field_name)
                if isinstance(value, str) and not os.path.isabs(value):
                    params[field_name] = os.path.normpath(
                        os.path.join(base_dir, value)
                    )
        timeout = merged.get("timeout")
        retries = merged.get("retries", 1)
        seed = merged.get("seed")
        jobs.append(
            BatchJob(
                id=job_id,
                type=str(merged["type"]),
                params=params,
                timeout=float(timeout) if timeout is not None else None,
                retries=int(retries),
                seed=int(seed) if seed is not None else None,
            )
        )
    return BatchManifest(jobs=jobs, defaults=dict(defaults), path=path)


def load_manifest(path: str) -> BatchManifest:
    """Parse a manifest file; relative netlist paths resolve next to it."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except FileNotFoundError:
        raise ManifestError(f"manifest file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not valid JSON: {exc}") from None
    return manifest_from_dict(
        data, base_dir=os.path.dirname(os.path.abspath(path)), path=path
    )
