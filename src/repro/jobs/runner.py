"""Parallel batch engine: process-per-job pool with deadlines and retries.

The verification workload is embarrassingly parallel across instances
(cf. Yu & Ciesielski's parallel GF-multiplier verification), so the engine
simply keeps up to ``workers`` single-job OS processes alive at once. One
process per job buys the three failure-isolation properties the engine
guarantees:

- **wall-clock deadlines** — a job past its timeout is SIGTERM'd (then
  SIGKILL'd) and reported ``timeout`` while its siblings keep running;
- **crash containment** — a worker that dies without reporting (hard
  ``os._exit``, segfault, OOM-kill) marks only that job ``crashed`` and is
  retried up to ``retries`` times before the job is declared failed;
- **memory hygiene** — per-job peak RSS is measured in the worker itself,
  and a runaway job cannot bloat the parent or its siblings.

Results stream to a JSONL run log as they land: a ``start`` record, one
``job`` record per attempt outcome, and a final ``summary`` with verdict /
status counts, aggregate cache hits, and wall time.

Each worker runs its job under its own trace collector and ships the span
snapshot home inside the result record (``telemetry``). The parent pops it
before logging — run logs stay compact — and, when a ``trace_dir`` is
given, writes one Chrome-trace file per job (``<trace_dir>/<id>.trace.json``,
noted in the record as ``trace_file``). If the parent itself has tracing
enabled, worker telemetry also merges into its collector.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import re
import signal
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from .. import obs
from ..gf import GF2m, logtables
from .cache import CanonicalPolyCache
from .executor import execute_job
from .manifest import BatchManifest

__all__ = ["BatchReport", "run_batch"]

logger = logging.getLogger("repro.jobs")

_POLL_INTERVAL = 0.02
_KILL_GRACE = 2.0


@dataclass
class BatchReport:
    """Outcome of one batch run."""

    results: List[Dict] = dataclass_field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    log_path: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    #: Hits broken out by which key kind answered: the prepassed
    #: canonical-structure key vs the raw-structure key (fallback lookups
    #: and ``prepass: false`` jobs).
    cache_hits_canonical: int = 0
    cache_hits_raw: int = 0

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result["status"]] = counts.get(result["status"], 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return all(result["status"] == "ok" for result in self.results)


def _worker_main(job: Dict, conn, cache_dir: Optional[str], attempt: int, seed) -> None:
    """Entry point of a single-job worker process."""
    # Restore default signal dispositions: a parent embedding run_batch may
    # have custom SIGTERM/SIGINT handlers (the service daemon does), and an
    # inherited handler would swallow the deadline SIGTERM this runner sends
    # overdue workers, forcing every kill through the SIGKILL grace period.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    obs.redtrace.reset_after_fork()  # never write into the parent's trace fd
    try:
        result = execute_job(job, cache_dir=cache_dir, attempt=attempt, seed=seed)
    except BaseException as exc:  # noqa: BLE001 — any failure becomes a record
        result = {
            "id": job["id"],
            "type": job["type"],
            "status": "failed",
            "attempt": attempt,
            "error": f"{type(exc).__name__}: {exc}",
        }
    try:
        conn.send(result)
        conn.close()
    except (BrokenPipeError, OSError):  # parent already gave up on us
        pass


class _RunLog:
    """Append-only JSONL writer (no-op when no path is given)."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._handle = None
        if path:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._handle = open(path, "w", encoding="utf-8")

    def write(self, record: Dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class _Running:
    job: Dict
    process: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    deadline: Optional[float]
    attempt: int
    started: float
    job_seed: Optional[int]
    max_retries: int


def _trace_file_name(job_id: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", job_id) + ".trace.json"


def _prewarm_gf_tables(manifest: BatchManifest) -> None:
    """Build GF tables for every manifest field in the parent, pre-fork.

    Job workers are forked, so tables built here are inherited copy-on-write
    by every worker: each distinct ``(k, modulus)`` is constructed exactly
    once per batch instead of once per job process. Malformed field params
    are left for the job itself to report as a proper failure record.
    """
    seen = set()
    for job in manifest.jobs:
        params = job.params
        k = params.get("k")
        if k is None:
            continue
        modulus = params.get("modulus")
        if isinstance(modulus, str):
            try:
                modulus = int(modulus, 0)
            except ValueError:
                continue
        try:
            field = GF2m(int(k), modulus=modulus)
        except (ValueError, TypeError):
            continue
        key = (field.k, field.modulus)
        if key in seen:
            continue
        seen.add(key)
        logtables.warm(field.k, field.modulus)


def _order_pending(pending: List[tuple], cost_model) -> "tuple[List[tuple], Dict]":
    """Shortest-predicted-first schedule for the pending stack.

    Returns ``(reordered, predicted_by_id)`` where ``reordered`` is laid
    out for tail-``pop()`` dispatch: the job with the *smallest* predicted
    runtime sits last. Predictions use manifest-time features only (op
    type and ``k`` — gate counts are unknown before parsing), so the
    model answers from its (op, k) buckets / op means. Jobs the model
    cannot price keep manifest order among themselves and run after every
    priced job.
    """
    predicted_by_id: Dict[str, float] = {}

    def price(entry: tuple) -> float:
        job = entry[0]
        params = job.get("params", {})
        value = cost_model.predict(job["type"], k=params.get("k"))
        if value is None:
            return float("inf")
        predicted_by_id[job["id"]] = round(value, 6)
        return value

    priced = [(price(entry), index, entry) for index, entry in enumerate(pending)]
    priced.sort(key=lambda item: (item[0], item[1]), reverse=True)
    return [entry for _, _, entry in priced], predicted_by_id


def run_batch(
    manifest: BatchManifest,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    default_timeout: Optional[float] = 300.0,
    log_path: Optional[str] = None,
    seed: Optional[int] = None,
    retries: Optional[int] = None,
    trace_dir: Optional[str] = None,
    cost_model=None,
) -> BatchReport:
    """Run every job of ``manifest`` on a pool of ``workers`` processes.

    ``default_timeout``/``retries`` apply to jobs that do not override them
    in the manifest; ``seed`` derives a distinct deterministic per-job seed
    (``seed + job index``) for the randomized counterexample search.
    ``trace_dir`` enables per-job Chrome traces. ``cost_model`` (a fitted
    :class:`repro.obs.costmodel.CostModel`) switches dispatch from manifest
    order to shortest-predicted-first and annotates each job record with
    ``predicted_seconds`` so ``repro report`` can score the model.
    """
    workers = max(1, int(workers))
    ctx = multiprocessing.get_context("fork")
    _prewarm_gf_tables(manifest)
    log = _RunLog(log_path)
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
    started = time.perf_counter()
    log.write(
        {
            "event": "start",
            "manifest": manifest.path,
            "jobs": len(manifest.jobs),
            "workers": workers,
            "cache_dir": cache_dir,
            "timeout": default_timeout,
            "seed": seed,
            "order": (
                "shortest-predicted-first" if cost_model is not None
                else "manifest"
            ),
        }
    )

    pending: List[tuple] = []  # (job dict, attempt, job seed, max retries)
    for index, job in enumerate(manifest.jobs):
        job_seed = seed + index if seed is not None else None
        job_retries = job.retries if retries is None else retries
        pending.append((job.to_dict(), 1, job_seed, job_retries))
    predicted_by_id: Dict[str, float] = {}
    if cost_model is not None:
        pending, predicted_by_id = _order_pending(pending, cost_model)
    else:
        pending.reverse()  # pop() from the tail preserves manifest order

    running: List[_Running] = []
    results: List[Dict] = []

    def finalize(record: Dict) -> None:
        # The raw span snapshot is bulky; keep it out of the run log and the
        # in-memory results, exporting/merging it here instead.
        telemetry = record.pop("telemetry", None)
        if record.get("id") in predicted_by_id:
            record["predicted_seconds"] = predicted_by_id[record["id"]]
        if telemetry:
            if trace_dir:
                path = os.path.join(trace_dir, _trace_file_name(record["id"]))
                obs.write_chrome_trace(telemetry, path)
                record["trace_file"] = path
            parent = obs.active_collector()
            if parent is not None:
                parent.merge(telemetry)
        if record.get("status") != "ok":
            logger.warning(
                "job %s finished %s after %d attempt(s): %s",
                record["id"],
                record["status"],
                record.get("attempt", 1),
                record.get("error", ""),
            )
        else:
            logger.debug(
                "job %s ok in %.3fs", record["id"], record.get("seconds", 0.0)
            )
        results.append(record)
        log.write({"event": "job", **record})

    def spawn(entry: tuple) -> None:
        job, attempt, job_seed, max_retries = entry
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(job, send, cache_dir, attempt, job_seed),
            daemon=True,
        )
        process.start()
        send.close()  # parent keeps only the read end
        timeout = job.get("timeout")
        if timeout is None:
            timeout = default_timeout
        deadline = time.monotonic() + timeout if timeout else None
        running.append(
            _Running(
                job,
                process,
                recv,
                deadline,
                attempt,
                time.monotonic(),
                job_seed,
                max_retries,
            )
        )

    def reap(entry: _Running) -> Optional[Dict]:
        """Result record if the worker reported one, else None."""
        try:
            if entry.conn.poll():
                return entry.conn.recv()
        except (EOFError, OSError):
            pass
        return None

    try:
        while pending or running:
            while pending and len(running) < workers:
                spawn(pending.pop())

            time.sleep(_POLL_INTERVAL)
            still_running: List[_Running] = []
            for entry in running:
                result = reap(entry)
                if result is not None:
                    entry.process.join()
                    entry.conn.close()
                    finalize(result)
                    continue
                if not entry.process.is_alive():
                    # The worker may have exited right after sending; pipe
                    # buffers survive process death, so drain once more.
                    result = reap(entry)
                    if result is not None:
                        entry.process.join()
                        entry.conn.close()
                        finalize(result)
                        continue
                    # Died without a result: hard crash (os._exit, signal,
                    # OOM-kill). Retry if the job has budget left.
                    exitcode = entry.process.exitcode
                    entry.process.join()
                    entry.conn.close()
                    if entry.attempt <= entry.max_retries:
                        logger.warning(
                            "job %s died with exit code %s on attempt %d; retrying",
                            entry.job["id"],
                            exitcode,
                            entry.attempt,
                        )
                        log.write(
                            {
                                "event": "retry",
                                "id": entry.job["id"],
                                "attempt": entry.attempt,
                                "exitcode": exitcode,
                            }
                        )
                        pending.append(
                            (
                                entry.job,
                                entry.attempt + 1,
                                entry.job_seed,
                                entry.max_retries,
                            )
                        )
                    else:
                        finalize(
                            {
                                "id": entry.job["id"],
                                "type": entry.job["type"],
                                "status": "crashed",
                                "attempt": entry.attempt,
                                "seconds": round(
                                    time.monotonic() - entry.started, 3
                                ),
                                "error": f"worker died with exit code "
                                f"{exitcode} (no result); "
                                f"{entry.attempt} attempt(s) made",
                            }
                        )
                    continue
                if entry.deadline is not None and time.monotonic() > entry.deadline:
                    logger.warning(
                        "job %s exceeded its %.1fs deadline; killing worker",
                        entry.job["id"],
                        time.monotonic() - entry.started,
                    )
                    _kill(entry.process)
                    entry.conn.close()
                    finalize(
                        {
                            "id": entry.job["id"],
                            "type": entry.job["type"],
                            "status": "timeout",
                            "attempt": entry.attempt,
                            "seconds": round(time.monotonic() - entry.started, 3),
                            "error": "wall-clock deadline exceeded",
                        }
                    )
                    continue
                still_running.append(entry)
            running[:] = still_running
    finally:
        for entry in running:
            _kill(entry.process)

    report = _summarize(results, manifest, workers, started, cache_dir, log)
    log.close()
    return report


def _kill(process: multiprocessing.Process) -> None:
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(_KILL_GRACE)
    if process.is_alive():
        process.kill()
        process.join()


def _summarize(
    results: List[Dict],
    manifest: BatchManifest,
    workers: int,
    started: float,
    cache_dir: Optional[str],
    log: _RunLog,
) -> BatchReport:
    hits = sum(r.get("cache", {}).get("hits", 0) for r in results)
    misses = sum(r.get("cache", {}).get("misses", 0) for r in results)
    hits_canonical = sum(
        r.get("cache", {}).get("hits_canonical", 0) for r in results
    )
    hits_raw = sum(r.get("cache", {}).get("hits_raw", 0) for r in results)
    if cache_dir and (hits or misses):
        CanonicalPolyCache(cache_dir).record(
            hits=hits,
            misses=misses,
            hits_canonical=hits_canonical,
            hits_raw=hits_raw,
        )
    report = BatchReport(
        results=results,
        wall_seconds=time.perf_counter() - started,
        workers=workers,
        log_path=log.path,
        cache_hits=hits,
        cache_misses=misses,
        cache_hits_canonical=hits_canonical,
        cache_hits_raw=hits_raw,
    )
    log.write(
        {
            "event": "summary",
            "jobs": len(manifest.jobs),
            "workers": workers,
            "wall_seconds": round(report.wall_seconds, 3),
            "status_counts": report.counts,
            "cache_hits": hits,
            "cache_misses": misses,
            "cache_hits_canonical": hits_canonical,
            "cache_hits_raw": hits_raw,
        }
    )
    return report
