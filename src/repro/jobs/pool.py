"""In-process fork pool for cone-sliced parallel abstraction.

The batch runner (:mod:`repro.jobs.runner`) isolates whole verification
*jobs* in one OS process each — the right trade for multi-second jobs that
may crash or blow their memory budget. Cone tasks are the opposite shape:
hundreds of sub-100ms reductions that all read the same circuit. This pool
serves that shape:

- **fork copy-on-write input handoff** — the parent publishes the task
  context (circuit, cone list, closure) in a module global *before* the
  workers fork, so every worker shares the parent's pages instead of
  unpickling its own copy; tasks on the wire are bare integers.
- **warm workers** — the pool initializer pre-builds the GF(2^k) log/antilog
  (or byte-window reduction) tables for the run's ``(k, modulus)`` via
  :func:`repro.gf.logtables.warm`, then records
  :func:`~repro.gf.logtables.table_builds`; every task reports the delta so
  callers can assert no worker rebuilt tables mid-run.
- **compact result handoff** — cone remainders travel back as packed byte
  blobs (the caller's ``fn`` decides the encoding; the parallel abstraction
  packs fixed-width little-endian bit masks), not per-term Python objects.
- **deadline + retry** — the whole map has an optional wall-clock deadline,
  and a broken pool (a worker died without reporting) or a timeout is
  retried with a fresh pool before :class:`PoolError` reaches the caller —
  the same containment contract as the job runner, scaled down.

Workers run tasks under their own :class:`~repro.obs.spans.TraceCollector`
when the parent had tracing enabled at fork time; the recorded spans ride
home on each result so the parent can merge them — in the Chrome trace each
worker pid renders as its own track, making pool load imbalance visible.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..gf import logtables

__all__ = ["PoolError", "PoolResult", "run_pool"]

logger = logging.getLogger("repro.jobs")

#: Task context published by the parent immediately before the workers
#: fork; children inherit it through copy-on-write memory. Holds the task
#: callable and a tracing flag — never pickled, never sent over a pipe.
_CTX: Optional[Dict[str, Any]] = None

#: ``logtables.table_builds()`` as recorded right after the initializer's
#: warm-up; tasks report ``table_builds() - _WARM_BUILDS`` so a mid-run
#: rebuild is visible to the parent.
_WARM_BUILDS = 0

#: The fork handoff goes through the ``_CTX`` module global, so only one map
#: may be in flight per process: a second concurrent caller would clobber the
#: first's context and its workers could fork with the wrong ``fn`` (or
#: ``_CTX = None``). This lock serialises concurrent :func:`run_pool` callers.
_POOL_LOCK = threading.Lock()


class PoolError(RuntimeError):
    """The pool could not complete the map (timeout or repeated crashes)."""


class PoolResult:
    """One task's outcome: index, payload, worker stats, optional spans."""

    __slots__ = ("index", "payload", "stats", "spans")

    def __init__(self, index: int, payload: Any, stats: Dict, spans: Optional[List]):
        self.index = index
        self.payload = payload
        self.stats = stats
        self.spans = spans


def _pool_initializer(k: Optional[int], modulus: Optional[int], tracing: bool) -> None:
    """Per-worker warm-up, run once right after the fork.

    Clears inherited tracing state (the parent's collector and current-span
    pointer survive the fork) and pre-builds the GF tables for the run's
    field so no task pays table construction — or, worse, every task in
    every worker pays it, the failure mode this initializer exists to kill.
    """
    global _WARM_BUILDS
    obs.disable()
    obs.reset_context()
    # An inherited REDTRACE writer shares the parent's file descriptor;
    # cone workers must never write to it (the parent re-emits their
    # events deterministically at merge time).
    obs.redtrace.reset_after_fork()
    if k is not None and modulus is not None:
        logtables.warm(k, modulus)
    _WARM_BUILDS = logtables.table_builds()


def _run_task(index: int) -> Tuple[int, Any, Dict, Optional[List]]:
    """Worker-side task wrapper: timing, tracing, table-rebuild accounting."""
    ctx = _CTX
    assert ctx is not None, "pool context lost across fork"
    fn: Callable[[int], Tuple[Any, Dict]] = ctx["fn"]
    spans: Optional[List] = None
    builds_before = logtables.table_builds()
    started = time.perf_counter()
    if ctx["tracing"]:
        collector = obs.TraceCollector()
        obs.enable(collector)
        try:
            payload, stats = fn(index)
        finally:
            obs.disable()
        spans = collector.snapshot()["spans"]
    else:
        payload, stats = fn(index)
    stats = dict(stats)
    stats["seconds"] = time.perf_counter() - started
    stats["pid"] = os.getpid()
    # Rebuilds since warm-up, not since task start: a task that *first*
    # triggers a lazy build makes every later task in this worker report a
    # nonzero delta too, which is exactly the loud failure we want.
    stats["table_rebuilds"] = logtables.table_builds() - _WARM_BUILDS
    stats.setdefault("warm_builds_delta", logtables.table_builds() - builds_before)
    return index, payload, stats, spans


def run_pool(
    fn: Callable[[int], Tuple[Any, Dict]],
    indices: Sequence[int],
    workers: int,
    field_key: Optional[Tuple[int, int]] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> List[PoolResult]:
    """Map ``fn`` over ``indices`` on a pool of forked workers.

    ``fn`` must return ``(payload, stats_dict)`` and is shipped to the
    workers by fork inheritance — closures over large in-memory state
    (circuits, cone lists) are free. ``indices`` controls dispatch order:
    callers submit heavy tasks first to keep the tail of the schedule
    short. ``field_key`` is the ``(k, modulus)`` whose GF tables the
    initializer pre-builds. ``timeout`` bounds the whole map's wall clock.

    Results come back in completion order; callers index by
    :attr:`PoolResult.index`. Every pool-path failure surfaces as
    :class:`PoolError`: infrastructure failures (a crashed worker, the map
    deadline, fork errors) are retried with a fresh pool first, while an
    exception raised by ``fn`` itself — deterministic, so a fresh pool
    cannot help — is wrapped immediately. Callers with a serial fallback
    need to catch only :class:`PoolError`.

    Maps are serialised process-wide (the fork handoff rides a module
    global); a concurrent call from another thread blocks until the
    in-flight map finishes.
    """
    if workers < 1:
        raise ValueError("run_pool needs at least one worker")
    attempts = max(1, retries + 1)
    last_error: Optional[BaseException] = None
    lock_wait_started = time.perf_counter()
    with _POOL_LOCK:
        # In a multi-threaded host (the verification service) concurrent
        # requests that each want a cone pool serialise here; surface the
        # wait so /metrics shows the contention instead of hiding it.
        waited = time.perf_counter() - lock_wait_started
        if waited > 0.001:
            obs.metrics.counter_add(
                obs.metrics.PARALLEL_POOL_LOCK_WAIT_MS, int(waited * 1000)
            )
        for attempt in range(1, attempts + 1):
            try:
                return _run_pool_once(fn, indices, workers, field_key, timeout)
            except (BrokenProcessPool, TimeoutError, OSError) as exc:
                last_error = exc
                if attempt < attempts:
                    logger.warning(
                        "worker pool attempt %d failed (%s: %s); retrying "
                        "with a fresh pool",
                        attempt,
                        type(exc).__name__,
                        exc,
                    )
            except Exception as exc:
                raise PoolError(
                    f"worker pool task failed: {type(exc).__name__}: {exc}"
                ) from exc
    raise PoolError(
        f"worker pool failed after {attempts} attempt(s): "
        f"{type(last_error).__name__}: {last_error}"
    )


def _run_pool_once(
    fn: Callable[[int], Tuple[Any, Dict]],
    indices: Sequence[int],
    workers: int,
    field_key: Optional[Tuple[int, int]],
    timeout: Optional[float],
) -> List[PoolResult]:
    global _CTX
    k, modulus = field_key if field_key is not None else (None, None)
    deadline = time.monotonic() + timeout if timeout is not None else None
    _CTX = {"fn": fn, "tracing": obs.is_enabled()}
    executor = ProcessPoolExecutor(
        max_workers=min(workers, max(1, len(indices))),
        mp_context=multiprocessing.get_context("fork"),
        initializer=_pool_initializer,
        initargs=(k, modulus, obs.is_enabled()),
    )
    results: List[PoolResult] = []
    completed = False
    try:
        futures = {executor.submit(_run_task, index) for index in indices}
        while futures:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"pool map exceeded its {timeout:.1f}s deadline with "
                        f"{len(futures)} task(s) outstanding"
                    )
            done, futures = wait(futures, timeout=remaining, return_when=FIRST_COMPLETED)
            if not done and deadline is not None:
                continue  # loop re-checks the deadline
            for future in done:
                index, payload, stats, spans = future.result()
                results.append(PoolResult(index, payload, stats, spans))
        completed = True
    finally:
        _CTX = None
        # Snapshot the worker list first — shutdown() clears _processes.
        workers_snapshot = list((getattr(executor, "_processes", None) or {}).values())
        # cancel_futures keeps a timed-out map from blocking shutdown on
        # work nobody will read.
        executor.shutdown(wait=False, cancel_futures=True)
        if not completed:
            _terminate_workers(workers_snapshot)
    return results


def _terminate_workers(processes: List) -> None:
    """Forcefully stop a failed map's workers.

    ``shutdown(cancel_futures=True)`` only drops *pending* futures; tasks
    already in flight keep running in the non-daemonic workers, where they
    compete with the fresh-pool retry for CPU and block interpreter exit on
    the atexit join if genuinely hung. Nobody will read their results, so
    SIGTERM them outright.
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
