"""Cone-task map façade: resident worker plane with a legacy fork-pool engine.

:func:`run_pool` is the one entry point for "map hundreds of sub-100ms
tasks that all read the same circuit across processes". Two engines serve
it:

- **plane** (default) — the resident :class:`~repro.jobs.plane.WorkerPlane`
  of pre-forked, GF-table-warm workers. Context (the task callable plus an
  explicit picklable ``context`` object) ships over a pipe once per
  distinct circuit and is epoch-versioned; maps after the first pay only
  per-task pipe traffic. Concurrent maps from different threads run on
  disjoint workers — nothing serialises on a module global.
- **forkpool** (``REPRO_WORKER_PLANE=0`` or ``engine="forkpool"``) — the
  original per-map ``ProcessPoolExecutor`` with fork copy-on-write context
  handoff. Kept as the escape hatch and as the measured baseline for the
  plane's dispatch-overhead win (see
  ``benchmarks/bench_parallel_abstraction.py``); it still serialises
  concurrent maps on its module lock, and it is the automatic fallback
  when a context cannot be pickled (closures over live objects).

Both engines keep the same contract: every pool-path failure surfaces as
:class:`PoolError` (infrastructure failures retried first — on the plane a
crashed worker is respawned and the in-flight task requeued; on the fork
pool the whole map reruns on a fresh pool), so callers with a serial
fallback need to catch only :class:`PoolError`.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..gf import logtables
from .plane import PoolError, PoolResult, _UnpicklableContext, get_plane

__all__ = ["PoolError", "PoolResult", "run_pool", "pool_engine"]

logger = logging.getLogger("repro.jobs")

#: Sentinel distinguishing "no context" (legacy ``fn(index)`` signature)
#: from an explicit ``context=None``.
_NO_CONTEXT = object()


def pool_engine() -> str:
    """The configured map engine: ``"plane"`` unless ``REPRO_WORKER_PLANE``
    is ``0``/``false``/``off``."""
    if os.environ.get("REPRO_WORKER_PLANE", "1").lower() in ("0", "false", "off"):
        return "forkpool"
    return "plane"


def _call_plain(fn: Callable[[int], Tuple[Any, Dict]], index: int):
    """Plane adapter for legacy zero-context callables."""
    return fn(index)


def run_pool(
    fn: Callable[..., Tuple[Any, Dict]],
    indices: Sequence[int],
    workers: int,
    field_key: Optional[Tuple[int, int]] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    context: Any = _NO_CONTEXT,
    engine: Optional[str] = None,
    packed: Optional[bytes] = None,
) -> List[PoolResult]:
    """Map ``fn`` over ``indices`` on worker processes.

    With ``context`` given, ``fn`` must be a module-level callable invoked
    as ``fn(context, index)``; the pair ships to the plane workers once per
    distinct context. Without it, ``fn(index)`` is called — closures over
    large state work on the fork-pool engine (copy-on-write) and on the
    plane only if picklable; unpicklable callables fall back to the fork
    pool transparently.

    ``fn`` returns ``(payload, stats_dict)``. ``indices`` controls dispatch
    order: callers submit heavy tasks first to keep the schedule's tail
    short. ``field_key`` is the ``(k, modulus)`` whose GF tables workers
    pre-build. ``timeout`` bounds the whole map's wall clock; ``retries``
    is the crash budget (per task on the plane, per map on the fork pool).

    Results come back in completion order; callers index by
    :attr:`PoolResult.index`. Every pool-path failure surfaces as
    :class:`PoolError`.
    """
    if workers < 1:
        raise ValueError("run_pool needs at least one worker")
    chosen = engine or pool_engine()
    if chosen == "plane":
        if context is _NO_CONTEXT:
            task_fn, task_ctx = _call_plain, fn
        else:
            task_fn, task_ctx = fn, context
        try:
            return get_plane().map(
                task_fn,
                task_ctx,
                indices,
                workers,
                field_key=field_key,
                timeout=timeout,
                retries=retries,
                packed=packed,
            )
        except _UnpicklableContext as exc:
            logger.debug(
                "plane context not picklable (%s); using the fork pool", exc
            )
    if context is _NO_CONTEXT:
        plain_fn = fn
    else:
        bound_ctx, bound_fn = context, fn

        def plain_fn(index: int) -> Tuple[Any, Dict]:
            return bound_fn(bound_ctx, index)

    return _run_forkpool(plain_fn, indices, workers, field_key, timeout, retries)


# -- legacy fork-pool engine --------------------------------------------------

#: Task context published by the parent immediately before the workers
#: fork; children inherit it through copy-on-write memory. Holds the task
#: callable and a tracing flag — never pickled, never sent over a pipe.
_CTX: Optional[Dict[str, Any]] = None

#: ``logtables.table_builds()`` as recorded right after the initializer's
#: warm-up; tasks report ``table_builds() - _WARM_BUILDS`` so a mid-run
#: rebuild is visible to the parent.
_WARM_BUILDS = 0

#: The fork handoff goes through the ``_CTX`` module global, so only one
#: fork-pool map may be in flight per process — a second concurrent caller
#: would clobber the first's context before its workers fork. Only the
#: legacy engine takes this lock; plane maps run concurrently.
_FORKPOOL_LOCK = threading.Lock()


def _pool_initializer(k: Optional[int], modulus: Optional[int], tracing: bool) -> None:
    """Per-worker warm-up, run once right after the fork.

    Clears inherited tracing state (the parent's collector and current-span
    pointer survive the fork) and pre-builds the GF tables for the run's
    field so no task pays table construction — or, worse, every task in
    every worker pays it, the failure mode this initializer exists to kill.
    """
    global _WARM_BUILDS
    obs.disable()
    obs.reset_context()
    # An inherited REDTRACE writer shares the parent's file descriptor;
    # cone workers must never write to it (the parent re-emits their
    # events deterministically at merge time).
    obs.redtrace.reset_after_fork()
    if k is not None and modulus is not None:
        logtables.warm(k, modulus)
    _WARM_BUILDS = logtables.table_builds()


def _run_task(index: int) -> Tuple[int, Any, Dict, Optional[List]]:
    """Worker-side task wrapper: timing, tracing, table-rebuild accounting."""
    ctx = _CTX
    assert ctx is not None, "pool context lost across fork"
    fn: Callable[[int], Tuple[Any, Dict]] = ctx["fn"]
    spans: Optional[List] = None
    builds_before = logtables.table_builds()
    started = time.perf_counter()
    if ctx["tracing"]:
        collector = obs.TraceCollector()
        obs.enable(collector)
        try:
            payload, stats = fn(index)
        finally:
            obs.disable()
        spans = collector.snapshot()["spans"]
    else:
        payload, stats = fn(index)
    stats = dict(stats)
    stats["seconds"] = time.perf_counter() - started
    stats["pid"] = os.getpid()
    # Rebuilds since warm-up, not since task start: a task that *first*
    # triggers a lazy build makes every later task in this worker report a
    # nonzero delta too, which is exactly the loud failure we want.
    stats["table_rebuilds"] = logtables.table_builds() - _WARM_BUILDS
    stats.setdefault("warm_builds_delta", logtables.table_builds() - builds_before)
    return index, payload, stats, spans


def _run_forkpool(
    fn: Callable[[int], Tuple[Any, Dict]],
    indices: Sequence[int],
    workers: int,
    field_key: Optional[Tuple[int, int]],
    timeout: Optional[float],
    retries: int = 1,
) -> List[PoolResult]:
    attempts = max(1, retries + 1)
    last_error: Optional[BaseException] = None
    lock_wait_started = time.perf_counter()
    with _FORKPOOL_LOCK:
        # Concurrent fork-pool maps serialise here; surface the wait so
        # /metrics shows the contention instead of hiding it.
        waited = time.perf_counter() - lock_wait_started
        if waited > 0.001:
            obs.metrics.counter_add(
                obs.metrics.PARALLEL_POOL_LOCK_WAIT_MS, int(waited * 1000)
            )
        for attempt in range(1, attempts + 1):
            try:
                return _run_forkpool_once(fn, indices, workers, field_key, timeout)
            except (BrokenProcessPool, TimeoutError, OSError) as exc:
                last_error = exc
                if attempt < attempts:
                    logger.warning(
                        "worker pool attempt %d failed (%s: %s); retrying "
                        "with a fresh pool",
                        attempt,
                        type(exc).__name__,
                        exc,
                    )
            except Exception as exc:
                raise PoolError(
                    f"worker pool task failed: {type(exc).__name__}: {exc}"
                ) from exc
    raise PoolError(
        f"worker pool failed after {attempts} attempt(s): "
        f"{type(last_error).__name__}: {last_error}"
    )


def _run_forkpool_once(
    fn: Callable[[int], Tuple[Any, Dict]],
    indices: Sequence[int],
    workers: int,
    field_key: Optional[Tuple[int, int]],
    timeout: Optional[float],
) -> List[PoolResult]:
    global _CTX
    k, modulus = field_key if field_key is not None else (None, None)
    deadline = time.monotonic() + timeout if timeout is not None else None
    _CTX = {"fn": fn, "tracing": obs.is_enabled()}
    executor = ProcessPoolExecutor(
        max_workers=min(workers, max(1, len(indices))),
        mp_context=multiprocessing.get_context("fork"),
        initializer=_pool_initializer,
        initargs=(k, modulus, obs.is_enabled()),
    )
    results: List[PoolResult] = []
    completed = False
    try:
        futures = {executor.submit(_run_task, index) for index in indices}
        while futures:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"pool map exceeded its {timeout:.1f}s deadline with "
                        f"{len(futures)} task(s) outstanding"
                    )
            done, futures = wait(futures, timeout=remaining, return_when=FIRST_COMPLETED)
            if not done and deadline is not None:
                continue  # loop re-checks the deadline
            for future in done:
                index, payload, stats, spans = future.result()
                results.append(
                    PoolResult(
                        index,
                        payload,
                        stats,
                        {"spans": spans, "counters": {}, "gauges": {}}
                        if spans is not None
                        else None,
                    )
                )
        completed = True
    finally:
        _CTX = None
        # Snapshot the worker list first — shutdown() clears _processes.
        workers_snapshot = list((getattr(executor, "_processes", None) or {}).values())
        # cancel_futures keeps a timed-out map from blocking shutdown on
        # work nobody will read.
        executor.shutdown(wait=False, cancel_futures=True)
        if not completed:
            _terminate_workers(workers_snapshot)
    return results


def _terminate_workers(processes: List) -> None:
    """Forcefully stop a failed map's workers.

    ``shutdown(cancel_futures=True)`` only drops *pending* futures; tasks
    already in flight keep running in the non-daemonic workers, where they
    compete with the fresh-pool retry for CPU and block interpreter exit on
    the atexit join if genuinely hung. Nobody will read their results, so
    SIGTERM them outright.
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
