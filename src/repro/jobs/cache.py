"""Content-addressed cache of canonical word-level polynomials.

The abstraction ``circuit -> Z = G(A, B, ...)`` is a pure function of the
circuit *structure*, the field, and the Case-2 strategy — so its result can
be keyed by content and reused across runs. Keys are SHA-256 digests of a
normalized netlist text (structure only: formatting, comments and gate
declaration order do not perturb the key) concatenated with the field
modulus and the ``case2`` mode. Values are JSON documents holding the
canonical polynomial's terms by variable *name*, so they rehydrate into any
compatible ring.

This is the hot path for regression and bug-hunting workloads: verifying
one golden spec against N candidate implementations abstracts the spec
exactly once — concurrent workers coordinate through a per-key advisory
lock (``fcntl.flock``), so even a cold cache computes each distinct
abstraction a single time per machine.

Layout under the cache root::

    objects/<2-char prefix>/<sha256>.json    one canonical polynomial each
    locks/<sha256>.lock                      per-key computation locks
    stats.json                               cumulative hit/miss counters
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Tuple

from ..algebra import Polynomial
from ..circuits import Circuit
from ..core import AbstractionResult, word_ring_for
from ..gf import GF2m

try:  # POSIX advisory locks; degrade to lock-free on exotic platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "CanonicalPolyCache",
    "canonical_cache_key",
    "default_cache_dir",
    "locking_available",
    "normalize_circuit_text",
    "polynomial_payload",
    "rehydrate_polynomial",
]


def locking_available() -> bool:
    """Whether per-key advisory locks are supported on this platform.

    When False the cache runs in *degraded (lock-free) mode*: concurrent
    callers racing on the same missing key may each compute it
    (at-least-once instead of exactly-once), but reads stay consistent —
    values publish via atomic rename, so a reader sees either nothing or a
    complete document, never a torn write.
    """
    return fcntl is not None


@contextmanager
def _exclusive_lock(lock_path: Path) -> Iterator[bool]:
    """Hold an exclusive advisory lock on ``lock_path`` (best effort).

    Yields True while a real ``flock`` is held. Without ``fcntl`` this
    degrades to a no-op that yields False — no lock file is even created,
    callers simply lose the exactly-once guarantee.
    """
    if fcntl is None:
        yield False
        return
    with open(lock_path, "w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield True
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)

_KEY_SCHEMA = "repro-canonical-poly-v1"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/canonical``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "canonical"


def normalize_circuit_text(circuit: Circuit) -> str:
    """Canonical text form of a netlist's *structure*.

    Two files that parse to the same DAG (same nets, gates, ports and word
    annotations) normalize identically regardless of formatting, comments,
    or the order gates appear in the source; any structural edit — a gate
    type swap, a rewired input, a renamed net — changes the text and hence
    the content address.
    """
    lines = ["inputs " + " ".join(circuit.inputs)]
    lines.append("outputs " + " ".join(circuit.outputs))
    for word in sorted(circuit.input_words):
        lines.append(f"word_in {word} " + " ".join(circuit.input_words[word]))
    for word in sorted(circuit.output_words):
        lines.append(f"word_out {word} " + " ".join(circuit.output_words[word]))
    for gate in sorted(circuit.gates, key=lambda g: g.output):
        lines.append(
            f"gate {gate.output} {gate.gate_type.value} " + " ".join(gate.inputs)
        )
    return "\n".join(lines) + "\n"


def canonical_cache_key(
    circuit: Circuit,
    field: GF2m,
    case2: str = "linearized",
    output_word: Optional[str] = None,
) -> str:
    """SHA-256 content address for one ``(circuit, field, case2)`` abstraction."""
    header = (
        f"{_KEY_SCHEMA}\n"
        f"k={field.k}\n"
        f"modulus={field.modulus:#x}\n"
        f"case2={case2}\n"
        f"output={output_word or '*'}\n"
    )
    digest = hashlib.sha256()
    digest.update(header.encode())
    digest.update(normalize_circuit_text(circuit).encode())
    return digest.hexdigest()


def polynomial_payload(result: AbstractionResult) -> Dict:
    """JSON-serialisable cache value for an :class:`AbstractionResult`."""
    variables = result.ring.variables
    terms = [
        [[[variables[var], exp] for var, exp in monomial], coeff]
        for monomial, coeff in result.polynomial.sorted_terms()
    ]
    return {
        "schema": _KEY_SCHEMA,
        "output_word": result.output_word,
        "input_words": list(result.input_words),
        "terms": terms,
        "stats": {
            "case": result.stats.case,
            "seconds": result.stats.seconds,
            "peak_terms": result.stats.peak_terms,
            "substitutions": result.stats.substitutions,
            "gates": result.stats.gate_count,
            "cones": result.stats.cones,
        },
    }


def rehydrate_polynomial(payload: Dict, field: GF2m) -> Polynomial:
    """Rebuild the canonical polynomial from a cache value."""
    ring = word_ring_for(field, list(payload["input_words"]))
    data = {}
    for monomial, coeff in payload["terms"]:
        key = tuple(sorted((ring.index[name], exp) for name, exp in monomial))
        data[key] = coeff
    return Polynomial(ring, data)


class CanonicalPolyCache:
    """Disk-persistent, content-addressed store of canonical polynomials."""

    def __init__(self, root: "Optional[os.PathLike | str]" = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.objects = self.root / "objects"
        self.locks = self.root / "locks"
        self.stats_path = self.root / "stats.json"

    # -- object store --------------------------------------------------------

    def path_for(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            return None  # torn write or unreadable entry == miss

    def put(self, key: str, payload: Dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(payload, created=time.time(), key=key)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)  # atomic publish; readers never see a torn file
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_compute(
        self, key: str, compute: Callable[[], Dict]
    ) -> Tuple[Dict, bool]:
        """Cached payload for ``key``, computing (once) on miss.

        Returns ``(payload, hit)``. Concurrent callers racing on the same
        missing key serialize on a per-key file lock: exactly one runs
        ``compute``, the rest block and then read its published result. In
        degraded mode (no ``fcntl`` — see :func:`locking_available`) racers
        may each compute, but every caller still returns a correct value and
        the atomic publish keeps reads untorn.
        """
        payload, source = self.lookup_or_compute(key, compute)
        return payload, source != "computed"

    def lookup_or_compute(
        self,
        key: str,
        compute: Callable[[], Dict],
        fallback_keys: "Tuple[str, ...] | tuple" = (),
    ) -> Tuple[Dict, str]:
        """Like :meth:`get_or_compute`, with fallback keys and hit attribution.

        Returns ``(payload, source)`` where source is ``"primary"`` (hit on
        ``key``), ``"fallback"`` (hit on one of ``fallback_keys``), or
        ``"computed"``. The prepass pipeline keys on the *canonical*
        (prepassed) structure and passes the raw-structure key as fallback,
        so entries written before the prepass existed — or by
        ``REPRO_PREPASS=0`` runs — still answer; a fallback hit is promoted
        under the primary key so the next lookup hits directly.
        """
        payload = self.get(key)
        if payload is not None:
            return payload, "primary"
        for fallback in fallback_keys:
            payload = self.get(fallback)
            if payload is not None:
                self.put(key, payload)
                return payload, "fallback"
        if fcntl is not None:
            self.locks.mkdir(parents=True, exist_ok=True)
        with _exclusive_lock(self.locks / f"{key}.lock"):
            payload = self.get(key)  # a peer may have published meanwhile
            if payload is not None:
                return payload, "primary"
            payload = compute()
            self.put(key, payload)
            return payload, "computed"

    # -- counters ------------------------------------------------------------

    _STAT_KEYS = ("hits", "misses", "hits_canonical", "hits_raw")

    def record(
        self,
        hits: int = 0,
        misses: int = 0,
        hits_canonical: int = 0,
        hits_raw: int = 0,
    ) -> None:
        """Accumulate hit/miss counters (atomic read-modify-write).

        ``hits_canonical``/``hits_raw`` break total hits out by which key
        kind answered: the prepassed canonical-structure key vs the
        raw-structure key (fallback lookups and ``REPRO_PREPASS=0`` runs).
        """
        if not hits and not misses:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with _exclusive_lock(self.root / "stats.lock"):
            counters = {k: 0 for k in self._STAT_KEYS}
            try:
                with open(self.stats_path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
                counters.update(
                    {k: int(stored.get(k, 0)) for k in self._STAT_KEYS}
                )
            except (FileNotFoundError, json.JSONDecodeError, OSError):
                pass
            counters["hits"] += hits
            counters["misses"] += misses
            counters["hits_canonical"] += hits_canonical
            counters["hits_raw"] += hits_raw
            counters["updated"] = time.time()
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(counters, handle)
            os.replace(tmp, self.stats_path)

    def stats(self) -> Dict:
        """Entry count, on-disk bytes, and cumulative hit/miss counters."""
        entries = 0
        size = 0
        if self.objects.is_dir():
            for path in self.objects.glob("*/*.json"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        counters = {k: 0 for k in self._STAT_KEYS}
        try:
            with open(self.stats_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            counters.update({k: int(stored.get(k, 0)) for k in self._STAT_KEYS})
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            pass
        return {
            "cache_dir": str(self.root),
            "entries": entries,
            "bytes": size,
            "hits": counters["hits"],
            "misses": counters["misses"],
            "hits_canonical": counters["hits_canonical"],
            "hits_raw": counters["hits_raw"],
        }

    def clear(self) -> int:
        """Delete every cached object (and counters); returns entries removed."""
        removed = 0
        if self.objects.is_dir():
            for path in self.objects.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        if self.locks.is_dir():
            for path in self.locks.glob("*.lock"):
                try:
                    path.unlink()
                except OSError:
                    pass
        try:
            self.stats_path.unlink()
        except OSError:
            pass
        return removed
