"""Resident worker plane: pre-forked, GF-table-warm processes fed over pipes.

The per-map fork pool (:mod:`repro.jobs.pool`'s legacy engine) paid a full
``fork + GF warm + teardown`` on every map — 0.1–0.6 s on the benchmark
boxes, which is why BENCH_parallel.json recorded parallel *slowdowns*. The
plane keeps one set of worker processes alive for the life of the host
process and amortises all of that:

- **pre-forked, reused workers** — forked once (lazily, on first map, or
  on demand when concurrent maps need more), each holding a duplex pipe to
  the parent. A map *checks out* up to N workers, feeds them one task at a
  time, and releases them; two threads can run maps concurrently on
  disjoint workers — there is no module-global context and no global lock.
- **epoch-tagged context** — the task context (callable + data + field
  key + tracing flag) is pickled once per *circuit*, content-hashed, and
  published to a worker only when the worker does not already hold that
  exact context. Tasks on the wire are packed id chunks tagged
  ``(epoch, seq)``; a worker holding a different epoch refuses the chunk
  with a ``stale`` reply instead of computing against the wrong circuit.
- **GF-table warm on publish** — the worker warms the context's
  ``(k, modulus)`` tables when it accepts the context, then reports
  ``table_builds`` deltas per task exactly like the legacy pool, so
  callers can still assert no mid-map rebuilds.
- **crash containment** — a worker that dies mid-task (OOM-kill, SIGKILL,
  segfault) is detected by the pipe going dead; the plane respawns a
  replacement, republishes the context and requeues the in-flight task,
  up to a per-task attempt budget. Deterministic task exceptions are not
  retried — they surface immediately as :class:`PoolError`.
- **map deadlines** — a wall-clock budget for the whole map; on expiry the
  workers still busy are killed (their results will never be read) and the
  map fails with a ``PoolError`` whose message names ``TimeoutError`` so
  existing fallback-to-serial callers behave unchanged.

Workers are daemonic: they die with the parent, and — being daemonic —
can never fork children of their own, so work dispatched *onto* the plane
(service jobs, cone maps) automatically degrades to serial inside the
worker instead of fork-bombing. A daemonic process asking for a plane gets
:class:`PoolError`, the same fallback contract the old pool's fork failure
produced.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import logging
import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..gf import logtables
from ..obs import metrics

__all__ = [
    "PoolError",
    "PoolResult",
    "WorkerPlane",
    "get_plane",
    "pack_context",
    "plane_cap",
]

logger = logging.getLogger("repro.jobs")

#: EMA smoothing for the measured per-map dispatch overhead.
_OVERHEAD_ALPHA = 0.3

#: How long `checkout` waits for a free worker before giving up. Maps hold
#: workers only while computing, so a long wait means the plane is wedged;
#: failing lets the caller take its serial fallback.
_CHECKOUT_TIMEOUT = float(os.environ.get("REPRO_PLANE_CHECKOUT_TIMEOUT", "30"))


class PoolError(RuntimeError):
    """The plane could not complete the map (timeout, crashes, no workers)."""


class PoolResult:
    """One task's outcome: index, payload, worker stats, optional telemetry.

    ``snapshot`` is the worker's full trace-collector snapshot (spans +
    counters + gauges) when the map ran with tracing, else ``None``;
    ``spans`` keeps the legacy spans-only view.
    """

    __slots__ = ("index", "payload", "stats", "snapshot")

    def __init__(
        self,
        index: int,
        payload: Any,
        stats: Dict,
        snapshot: Optional[Dict] = None,
    ):
        self.index = index
        self.payload = payload
        self.stats = stats
        self.snapshot = snapshot

    @property
    def spans(self) -> Optional[List]:
        return self.snapshot["spans"] if self.snapshot else None


def plane_cap() -> int:
    """Max resident workers (``REPRO_PLANE_MAX_WORKERS``, default
    ``max(4, 2 * cpu_count)``) — generous enough for two concurrent maps of
    two workers each even on a single-CPU box."""
    raw = os.environ.get("REPRO_PLANE_MAX_WORKERS")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(4, 2 * (os.cpu_count() or 1))


# -- worker side --------------------------------------------------------------


def _worker_main(conn) -> None:
    """Worker loop: receive context publishes and tasks, send results.

    Runs in a freshly forked daemonic child. The parent's tracing state and
    REDTRACE writer survive the fork, so the first act is to neutralise
    them — cone/task events are re-emitted deterministically by the parent
    at merge time, never written from here.
    """
    # A parent hosting the plane may have custom SIGTERM/SIGINT handlers
    # (the service daemon's graceful-drain hook, for one). Inherited through
    # the fork they would swallow the terminate() that multiprocessing's
    # exit handler sends daemonic children, deadlocking the parent's exit.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    obs.disable()
    obs.reset_context()
    obs.redtrace.reset_after_fork()
    ctx_fn: Optional[Callable[[Any, int], Tuple[Any, Dict]]] = None
    ctx_data: Any = None
    ctx_epoch = -1
    tracing = False
    warm_builds = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == "ctx":
            _, epoch, blob = message
            try:
                ctx_fn, ctx_data, field_key, tracing = pickle.loads(blob)
                if field_key is not None:
                    logtables.warm(*field_key)
                ctx_epoch = epoch
                warm_builds = logtables.table_builds()
                conn.send(("ctx_ok", epoch))
            except Exception as exc:  # noqa: BLE001 — reported to the parent
                ctx_epoch = -1
                conn.send(("ctx_err", epoch, f"{type(exc).__name__}: {exc}"))
        elif kind == "task":
            # One message carries a *chunk* of packed task ids: round-trip
            # latency amortises across the chunk while the one-in-flight-
            # chunk-per-worker rule keeps dynamic load balancing.
            _, epoch, seq, chunk = message
            if epoch != ctx_epoch or ctx_fn is None:
                conn.send(("stale", seq, ctx_epoch))
                continue
            outputs = []
            collector = None
            index = None
            try:
                if tracing:
                    collector = obs.TraceCollector()
                    obs.enable(collector)
                try:
                    for index in chunk:
                        builds_before = logtables.table_builds()
                        started = time.perf_counter()
                        payload, stats = ctx_fn(ctx_data, index)
                        stats = dict(stats)
                        stats["seconds"] = time.perf_counter() - started
                        stats["pid"] = os.getpid()
                        # Rebuilds since the context warm, not since task
                        # start: a task that triggers a lazy build keeps
                        # every later task in this worker loud about it.
                        stats["table_rebuilds"] = (
                            logtables.table_builds() - warm_builds
                        )
                        stats.setdefault(
                            "warm_builds_delta",
                            logtables.table_builds() - builds_before,
                        )
                        outputs.append((index, payload, stats))
                finally:
                    if collector is not None:
                        obs.disable()
                snapshot = collector.snapshot() if collector is not None else None
                conn.send(("ok", seq, outputs, snapshot))
            except Exception as exc:  # noqa: BLE001 — deterministic, no retry
                conn.send(("err", seq, index, f"{type(exc).__name__}: {exc}"))
        elif kind == "ping":
            conn.send(("pong", message[1]))
        elif kind == "exit":
            break
    try:
        conn.close()
    except OSError:
        pass


# -- parent side --------------------------------------------------------------


class _Worker:
    """Parent-side handle: process, pipe, and the context it holds."""

    __slots__ = ("process", "conn", "held", "wid")

    def __init__(self, process, conn, wid: int):
        self.process = process
        self.conn = conn
        self.wid = wid
        self.held: Optional[Tuple[str, int]] = None  # (ctx key, epoch)

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, AttributeError):
            try:
                self.process.terminate()
            except OSError:
                pass
        self.process.join(timeout=2.0)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPlane:
    """A resident pool of forked workers shared by every map in the process.

    Thread-safe: concurrent :meth:`map` calls check out disjoint workers
    and run fully in parallel — the serialising module lock of the legacy
    fork pool is gone.
    """

    def __init__(self, max_workers: Optional[int] = None):
        self._max = max_workers or plane_cap()
        self._cond = threading.Condition()
        self._workers: List[_Worker] = []   # every live worker
        self._free: List[_Worker] = []      # subset not checked out
        self._epoch = itertools.count(1)
        self._ctx: Optional[Tuple[str, int, bytes]] = None  # (key, epoch, blob)
        self._wid = itertools.count(1)
        self._closed = False
        self._overhead_ema: Optional[float] = None
        self._pid = os.getpid()
        self._mp = multiprocessing.get_context("fork")

    # -- introspection -------------------------------------------------------

    @property
    def workers_alive(self) -> int:
        with self._cond:
            return sum(1 for w in self._workers if w.alive())

    def dispatch_overhead(self, calibrate: bool = True) -> float:
        """Measured per-map dispatch overhead in seconds (EMA).

        Before any real map has run, optionally calibrates with a no-op
        map so the engage policy has a real number instead of a guess.
        """
        if self._overhead_ema is None and calibrate and not self._closed:
            try:
                started = time.perf_counter()
                self.map(_noop_task, None, [0], 1, tracing=False)
                wall = time.perf_counter() - started
                with self._cond:
                    if self._overhead_ema is None:
                        self._overhead_ema = wall
            except PoolError:
                return float("inf")
        return self._overhead_ema if self._overhead_ema is not None else float("inf")

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting maps, wait for checked-out workers, exit them all.

        Workers still busy past ``timeout`` are killed — they are daemonic,
        so this only accelerates what interpreter exit would do anyway.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            while len(self._free) < len(self._workers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            workers, self._workers, self._free = self._workers, [], []
        for worker in workers:
            if worker.alive():
                try:
                    worker.conn.send(("exit",))
                except (OSError, BrokenPipeError):
                    pass
        for worker in workers:
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.alive():
                worker.kill()
            try:
                worker.conn.close()
            except OSError:
                pass

    def _spawn_locked(self) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-plane-{next(self._wid)}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn, process.pid or 0)
        self._workers.append(worker)
        metrics.counter_add(metrics.PLANE_WORKERS_SPAWNED, 1)
        return worker

    # -- checkout ------------------------------------------------------------

    def _checkout(
        self, want: int, key: str, timeout: float = _CHECKOUT_TIMEOUT
    ) -> List[_Worker]:
        """Acquire 1..want workers, preferring ones already holding ``key``.

        Returns as soon as at least one worker is available (more join the
        map only if free *now*); waits when the plane is fully checked out,
        and raises :class:`PoolError` if nothing frees up within
        ``timeout`` — the caller's serial fallback beats a wedged wait.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            while True:
                if self._closed:
                    raise PoolError("worker plane is shut down")
                # Cull silently-dead free workers before handing them out.
                self._free = [w for w in self._free if w.alive()]
                self._workers = [w for w in self._workers if w.alive()]
                affine = [w for w in self._free if w.held and w.held[0] == key]
                others = [w for w in self._free if not (w.held and w.held[0] == key)]
                granted = (affine + others)[:want]
                for worker in granted:
                    self._free.remove(worker)
                while len(granted) < want and len(self._workers) < self._max:
                    granted.append(self._spawn_locked())
                if granted:
                    return granted
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PoolError(
                        f"no plane workers became available within {timeout:.0f}s "
                        f"({len(self._workers)} checked out)"
                    )
                self._cond.wait(remaining)

    def _release(self, workers: Sequence[_Worker]) -> None:
        with self._cond:
            for worker in workers:
                if worker in self._workers and worker.alive():
                    self._free.append(worker)
            self._cond.notify_all()

    def _discard(self, worker: _Worker) -> None:
        """Drop a dead worker from the books (caller holds no lock)."""
        with self._cond:
            if worker in self._workers:
                self._workers.remove(worker)
            if worker in self._free:
                self._free.remove(worker)
            self._cond.notify_all()

    def _replace(self, dead: _Worker) -> Optional[_Worker]:
        dead.kill()
        self._discard(dead)
        with self._cond:
            if self._closed or len(self._workers) >= self._max:
                return None
            worker = self._spawn_locked()
        metrics.counter_add(metrics.PLANE_WORKER_RESPAWNS, 1)
        return worker

    # -- the map -------------------------------------------------------------

    def map(
        self,
        fn: Callable[[Any, int], Tuple[Any, Dict]],
        context: Any,
        indices: Sequence[int],
        workers: int,
        field_key: Optional[Tuple[int, int]] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        tracing: Optional[bool] = None,
        packed: Optional[bytes] = None,
    ) -> List[PoolResult]:
        """Map ``fn(context, index)`` over ``indices`` on checked-out workers.

        ``fn`` must be picklable by reference (a module-level callable) and
        ``context`` by value; both ship once per distinct context, after
        which tasks are three small integers on a pipe. Callers that map
        the same context repeatedly can pre-pack it once with
        :func:`pack_context` and pass ``packed`` to skip re-pickling.
        Results come back in completion order; callers index by
        :attr:`PoolResult.index`.
        """
        if workers < 1:
            raise ValueError("plane map needs at least one worker")
        if not indices:
            return []
        if os.getpid() != self._pid:
            raise PoolError("worker plane crossed a fork; build a fresh one")
        if multiprocessing.current_process().daemon:
            raise PoolError("daemonic process cannot host a worker plane")
        if tracing is None:
            tracing = obs.is_enabled()
        if packed is not None:
            blob = packed
        else:
            try:
                blob = pack_context(fn, context, field_key, tracing)
            except Exception as exc:
                raise _UnpicklableContext(
                    f"plane context not picklable: {type(exc).__name__}: {exc}"
                ) from exc
        key = hashlib.sha256(blob).hexdigest()
        with self._cond:
            if self._ctx is not None and self._ctx[0] == key:
                _, epoch, blob = self._ctx
                metrics.counter_add(metrics.PLANE_CTX_REUSED, 1)
            else:
                epoch = next(self._epoch)
                self._ctx = (key, epoch, blob)
                metrics.counter_add(metrics.PLANE_CTX_PUBLISHES, 1)

        started = time.perf_counter()
        deadline = started + timeout if timeout is not None else None
        granted = self._checkout(min(workers, len(indices)), key)
        metrics.counter_add(metrics.PLANE_MAPS, 1)
        queue: deque = deque(indices)
        inflight: Dict[Any, Tuple[_Worker, int, List[int]]] = {}  # conn -> chunk
        crashes: Dict[int, int] = {}
        results: List[PoolResult] = []
        seq = itertools.count()
        busy_seconds = 0.0
        # Pack several task ids per pipe message: ~8 chunks per worker keeps
        # round-trip count low without giving up much load balancing.
        chunk_size = max(1, min(16, len(indices) // (len(granted) * 8) or 1))

        def publish(worker: _Worker) -> None:
            if worker.held != (key, epoch):
                worker.conn.send(("ctx", epoch, blob))
                # Optimistic: the ctx_ok ack is consumed in-order before
                # the first task result; a ctx_err fails the map below.
                worker.held = (key, epoch)

        def feed(worker: _Worker) -> bool:
            if not queue:
                return False
            chunk = [queue.popleft() for _ in range(min(chunk_size, len(queue)))]
            task_seq = next(seq)
            worker.conn.send(("task", epoch, task_seq, chunk))
            inflight[worker.conn] = (worker, task_seq, chunk)
            return True

        def feed_idle() -> None:
            busy = {entry[0] for entry in inflight.values()}
            for worker in granted:
                if queue and worker not in busy:
                    publish(worker)
                    feed(worker)

        def crash(worker: _Worker) -> None:
            entry = inflight.pop(worker.conn, None)
            if worker in granted:
                granted.remove(worker)
            replacement = self._replace(worker)
            if entry is not None:
                _, _, chunk = entry
                worst = 0
                for index in chunk:
                    crashes[index] = crashes.get(index, 0) + 1
                    worst = max(worst, crashes[index])
                if worst > max(0, retries):
                    raise PoolError(
                        f"worker pool failed after {worst} attempt(s): "
                        f"worker pid {worker.wid} died running task(s) {chunk}"
                    )
                metrics.counter_add(metrics.PLANE_TASK_RETRIES, len(chunk))
                queue.extendleft(reversed(chunk))
            if replacement is not None:
                granted.append(replacement)
                publish(replacement)
                feed(replacement)

        completed = False
        try:
            for worker in granted:
                publish(worker)
                feed(worker)
            while inflight or queue:
                if not inflight:
                    feed_idle()
                    if not inflight:
                        raise PoolError(
                            f"worker pool failed: every plane worker died with "
                            f"{len(queue)} task(s) unrun"
                        )
                wait_for = None
                if deadline is not None:
                    wait_for = deadline - time.monotonic()
                    if wait_for <= 0:
                        raise PoolError(
                            f"worker pool failed: TimeoutError: map exceeded its "
                            f"{timeout:.1f}s deadline with "
                            f"{len(queue) + len(inflight)} task(s) outstanding"
                        )
                ready = connection_wait(list(inflight.keys()), timeout=wait_for)
                for conn in ready:
                    entry = inflight.get(conn)
                    if entry is None:
                        continue
                    worker, _, chunk = entry
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        crash(worker)
                        continue
                    kind = message[0]
                    if kind == "ctx_ok":
                        continue
                    if kind == "ctx_err":
                        raise PoolError(
                            f"worker pool context publish failed: {message[2]}"
                        )
                    if kind == "ok":
                        _, _, outputs, snapshot = message
                        for position, (r_index, payload, stats) in enumerate(outputs):
                            # The chunk shares one collector; attach its
                            # snapshot once so merges don't double-count.
                            results.append(
                                PoolResult(
                                    r_index,
                                    payload,
                                    stats,
                                    snapshot if position == 0 else None,
                                )
                            )
                            busy_seconds += stats.get("seconds", 0.0)
                        del inflight[conn]
                        feed(worker)
                    elif kind == "err":
                        raise PoolError(f"worker pool task failed: {message[3]}")
                    elif kind == "stale":
                        # Worker holds another epoch (it missed a publish —
                        # e.g. it was respawned between publish and feed).
                        metrics.counter_add(metrics.PLANE_STALE_REFUSALS, 1)
                        del inflight[conn]
                        queue.extendleft(reversed(chunk))
                        worker.held = None
                        publish(worker)
                        feed(worker)
                    # "pong" and anything else: ignore.
            completed = True
        finally:
            if not completed:
                # Workers with a task still in flight are computing results
                # nobody will read (timeout / fatal map error): kill them so
                # they stop competing with the serial fallback for CPU.
                dead = {w for (w, _, _) in inflight.values()}
                for worker in dead:
                    worker.kill()
                    self._discard(worker)
                    if worker in granted:
                        granted.remove(worker)
            self._release(granted)
        wall = time.perf_counter() - started
        parallelism = max(1, min(len(granted) or 1, os.cpu_count() or 1))
        overhead = max(0.0, wall - busy_seconds / parallelism)
        with self._cond:
            if self._overhead_ema is None:
                self._overhead_ema = overhead
            else:
                self._overhead_ema = (
                    (1 - _OVERHEAD_ALPHA) * self._overhead_ema
                    + _OVERHEAD_ALPHA * overhead
                )
        metrics.gauge_max(
            metrics.PLANE_DISPATCH_OVERHEAD_MS, int(overhead * 1000)
        )
        return results


class _UnpicklableContext(PoolError):
    """Context cannot ship over a pipe; the legacy COW fork pool still can."""


def pack_context(
    fn: Callable[[Any, int], Tuple[Any, Dict]],
    context: Any,
    field_key: Optional[Tuple[int, int]] = None,
    tracing: Optional[bool] = None,
) -> bytes:
    """Serialise a plane context once, for reuse across many maps.

    The blob's content hash is the context identity: two maps passing the
    same bytes share one worker-side publish.
    """
    if tracing is None:
        tracing = obs.is_enabled()
    return pickle.dumps(
        (fn, context, field_key, tracing), protocol=pickle.HIGHEST_PROTOCOL
    )


def _noop_task(context: Any, index: int) -> Tuple[Any, Dict]:
    """Calibration task: measures pure dispatch cost."""
    return None, {}


# -- process-global singleton -------------------------------------------------

_PLANE: Optional[WorkerPlane] = None
_PLANE_LOCK = threading.Lock()


def get_plane() -> WorkerPlane:
    """The process-wide plane, created lazily on first use.

    A plane inherited through a fork is useless (its pipes are shared with
    the real parent), so a child that asks gets a fresh one — unless it is
    daemonic, in which case it cannot fork workers at all and the caller
    should fall back to serial, which :class:`PoolError` triggers.
    """
    global _PLANE
    if multiprocessing.current_process().daemon:
        raise PoolError("daemonic process cannot host a worker plane")
    with _PLANE_LOCK:
        if _PLANE is None or _PLANE._pid != os.getpid():
            _PLANE = WorkerPlane()
        return _PLANE


def reset_plane() -> None:
    """Tear down the process-global plane (tests, post-fork hygiene)."""
    global _PLANE
    with _PLANE_LOCK:
        plane, _PLANE = _PLANE, None
    if plane is not None and plane._pid == os.getpid():
        plane.shutdown()


# Registered after multiprocessing's own _exit_function, so (atexit is LIFO)
# it runs first: workers get an orderly "exit" and are joined before
# multiprocessing sweeps whatever daemonic children remain.
atexit.register(reset_plane)
