"""Batch verification job engine.

Scales the paper's flow out across verification *instances*: a manifest of
jobs (verify pair / abstract single / check-spec) runs on a multiprocessing
worker pool with per-job wall-clock deadlines, retry-on-crash and a JSONL
run log, layered over a content-addressed disk cache of canonical
word-level polynomials (SHA-256 of normalized netlist + field modulus +
Case-2 mode), so unchanged circuits are never re-abstracted.
"""

from .cache import (
    CanonicalPolyCache,
    canonical_cache_key,
    default_cache_dir,
    locking_available,
    normalize_circuit_text,
    polynomial_payload,
    rehydrate_polynomial,
)
from .executor import execute_job
from .pool import PoolError, PoolResult, run_pool
from .manifest import (
    BatchJob,
    BatchManifest,
    ManifestError,
    load_manifest,
    manifest_from_dict,
)
from .runner import BatchReport, run_batch

__all__ = [
    "BatchJob",
    "BatchManifest",
    "BatchReport",
    "CanonicalPolyCache",
    "ManifestError",
    "PoolError",
    "PoolResult",
    "canonical_cache_key",
    "default_cache_dir",
    "execute_job",
    "load_manifest",
    "locking_available",
    "manifest_from_dict",
    "normalize_circuit_text",
    "polynomial_payload",
    "rehydrate_polynomial",
    "run_batch",
]
