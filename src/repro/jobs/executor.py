"""In-worker job execution with span-derived phase timings and cache hits.

:func:`execute_job` runs one :class:`~repro.jobs.manifest.BatchJob` (passed
as a plain dict so it crosses the process boundary cheaply) and returns a
JSON-serialisable result record. Each job runs under its own
:class:`~repro.obs.spans.TraceCollector`; the record's ``phases`` map —
the run log's historical schema — is *derived* from the recorded spans,
and the full span snapshot travels alongside as ``telemetry`` so the pool
parent can merge it or export per-job Chrome traces. The phases mirror
the paper's pipeline:

``parse``
    Netlist reading (BLIF / structural Verilog).
``prepass``
    Structural pre-reduction (:mod:`repro.prepass`): canonicalization plus
    the fraig SAT sweep, run before hashing so cache keys are structural-
    variant-invariant. Nonzero even on warm hits — the canonical key is a
    function of the prepassed circuit.
``rato_setup``
    Building the Refined Abstraction Term Order (Definition 5.1).
``spoly_reduction``
    The guided reduction ``Spoly(f_w, f_g) ->_{F, F0}+ r`` plus Case-2
    finishing — the dominant cost.
``coeff_match``
    Re-homing both canonical polynomials into a shared ring and comparing
    coefficients (plus counterexample search on mismatch).

Canonical polynomials route through the content-addressed cache when a
``cache_dir`` is given. A warm hit skips ``rato_setup`` and
``spoly_reduction`` entirely — those phases are still emitted as explicit
zeros (with per-side ``*_cache_hit`` flags) so downstream aggregation
never KeyErrors and cache wins don't skew phase averages by dropping out
of the denominator.
"""

from __future__ import annotations

import os
import random
import resource
import time
from typing import Dict, Optional, Tuple

from .. import kernels, obs
from ..algebra import parse_polynomial
from ..circuits import Circuit, read_netlist, read_netlist_text
from ..core import word_ring_for
from ..gf import GF2m
from ..prepass import abstract_canonical
from ..verify import check_ideal_membership
from ..verify.equivalence import verify_equivalence
from .cache import CanonicalPolyCache, rehydrate_polynomial

__all__ = [
    "execute_job",
    "phases_from_spans",
    "run_abstract",
    "run_check_spec",
    "run_reveng",
    "run_verify",
]

#: Polynomials larger than this many characters are elided in result
#: records — buggy Case-2 abstractions can be astronomically dense, and the
#: run log should stay grep-able.
_MAX_POLY_CHARS = 2000

#: Span name -> run-log phase. ``case2_finish`` folds into
#: ``spoly_reduction`` because the historical phase timed the whole
#: abstraction step (Section 5's reduction plus its Case-2 epilogue).
_PHASE_OF_SPAN = {
    "parse": "parse",
    "prepass": "prepass",
    "rato_setup": "rato_setup",
    "spoly_reduction": "spoly_reduction",
    "case2_finish": "spoly_reduction",
    "coeff_match": "coeff_match",
    # The parallel path's "cone_slicing"/"cone_reduction" spans are
    # deliberately unmapped: the umbrella "spoly_reduction" span already
    # covers the pool's wall clock, and folding the per-cone worker spans
    # in as well would double-count the phase. They still ride along in
    # ``telemetry`` for flamegraphs.
}

#: Phases emitted as explicit zeros when nothing contributed to them
#: (cache hits), keyed by job type.
_EXPECTED_PHASES = {
    "verify": ("parse", "prepass", "rato_setup", "spoly_reduction", "coeff_match"),
    "abstract": ("parse", "prepass", "rato_setup", "spoly_reduction"),
    "check-spec": ("parse", "rato_setup", "spoly_reduction"),
    "reveng": ("parse", "prepass", "rato_setup", "spoly_reduction"),
}

#: Fresh per-job cache-counter dict: totals plus the canonical/raw key
#: split the prepass pipeline maintains (see
#: :func:`repro.prepass.abstract_canonical`).
def _new_counters() -> Dict[str, int]:
    return {"hits": 0, "misses": 0, "hits_canonical": 0, "hits_raw": 0}


def phases_from_spans(spans) -> Dict[str, float]:
    """Fold span durations into the run log's flat ``phases`` map."""
    phases: Dict[str, float] = {}
    for record in spans:
        phase = _PHASE_OF_SPAN.get(record["name"])
        if phase is not None:
            phases[phase] = phases.get(phase, 0.0) + record["dur"]
    return phases


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _field_for(params: Dict) -> GF2m:
    modulus = params.get("modulus")
    if isinstance(modulus, str):
        modulus = int(modulus, 0)
    return GF2m(int(params["k"]), modulus=modulus)


def _load_circuit(params: Dict, key: str) -> Circuit:
    """Load the netlist named by ``params[key]``, path- or body-based.

    Batch manifests carry filesystem paths (``params["spec"]``); the
    verification service streams netlist *bodies* in the request instead
    (``params["spec_text"]``), since the daemon may not share a filesystem
    with its clients. A ``<key>_text`` entry wins over a path.
    """
    text = params.get(f"{key}_text")
    if text is not None:
        return read_netlist_text(text, name=str(params.get(key) or f"<{key}>"))
    return read_netlist(params[key])


def _clipped_poly(output_word: object, polynomial_text: str, terms: int) -> str:
    text = f"{output_word} = {polynomial_text}"
    if len(text) > _MAX_POLY_CHARS:
        return text[:_MAX_POLY_CHARS] + f"... [{terms} terms]"
    return text


def _poly_str(polynomial, output_word: str) -> str:
    return _clipped_poly(output_word, str(polynomial), len(polynomial))


def run_verify(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    seed: Optional[int] = None,
    inflight=None,
) -> Dict:
    """Run one verify job body: prepass, abstract both sides, coefficient-match.

    The shared engine behind batch ``verify`` jobs and the service's
    ``POST /v1/verify``. ``params`` uses the manifest schema; netlists may
    arrive as paths (``spec``/``impl``) or as streamed bodies
    (``spec_text``/``impl_text``). The body is a thin record adapter over
    :func:`~repro.verify.equivalence.verify_equivalence` — the exact
    pipeline the CLI runs — with the cache, single-flight group and
    ``params["prepass"]`` override threaded through.
    """
    counters = counters if counters is not None else _new_counters()
    field = _field_for(params)

    spec = _load_circuit(params, "spec")
    impl = _load_circuit(params, "impl")

    outcome = verify_equivalence(
        spec,
        impl,
        field,
        case2=params.get("case2", "linearized"),
        seed=seed,
        jobs=params.get("jobs"),
        cache=cache,
        counters=counters,
        inflight=inflight,
        prepass=params.get("prepass"),
    )
    details = outcome.details
    spec_stats = details["spec"]
    impl_stats = details["impl"]
    record = {
        "verdict": outcome.status,
        "counterexample": outcome.counterexample,
        "spec_polynomial": _clipped_poly(
            spec_stats.get("output_word"),
            details["spec_polynomial"],
            details["spec_terms"],
        ),
        "spec_terms": details["spec_terms"],
        "impl_terms": details["impl_terms"],
        "spec_cache_hit": details["spec_cache_hit"],
        "impl_cache_hit": details["impl_cache_hit"],
        "spec_case": spec_stats["case"],
        "impl_case": impl_stats["case"],
        # Cost-model features: field width, total gate count across both
        # sides (raw, pre-prepass), total cone count (0 on the serial path /
        # old cache entries).
        "k": field.k,
        "gates": spec.num_gates() + impl.num_gates(),
        "cones": (
            (spec_stats.get("cones") or 0) + (impl_stats.get("cones") or 0)
        ),
    }
    prepass_stats = {
        side: stats["prepass"]
        for side, stats in (("spec", spec_stats), ("impl", impl_stats))
        if stats.get("prepass")
    }
    if prepass_stats:
        record["prepass"] = prepass_stats
    return record


def run_abstract(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
) -> Dict:
    """Run one abstract job body: a single circuit's canonical polynomial."""
    counters = counters if counters is not None else _new_counters()
    field = _field_for(params)
    circuit = _load_circuit(params, "netlist")
    probe = abstract_canonical(
        circuit,
        field,
        output_word=params.get("output_word"),
        case2=params.get("case2", "linearized"),
        jobs=params.get("jobs"),
        cache=cache,
        counters=counters,
        inflight=inflight,
        prepass=params.get("prepass"),
    )
    payload = probe.payload
    polynomial = rehydrate_polynomial(payload, field)
    record = {
        "polynomial": _poly_str(polynomial, payload["output_word"]),
        "terms": len(polynomial),
        "case": payload["stats"]["case"],
        "cache_hit": probe.hit,
        "abstraction_stats": payload["stats"],
        "k": field.k,
        "gates": circuit.num_gates(),
        "cones": payload["stats"].get("cones") or 0,
    }
    if probe.prepass is not None:
        record["prepass"] = probe.prepass.stats()
    return record


def run_reveng(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
) -> Dict:
    """Run one reveng job body: polynomial recovery or function identification.

    ``params["mode"]`` selects the engine: ``"poly"`` (default) sweeps
    candidate irreducible polynomials of degree ``m`` until the netlist's
    canonical polynomial collapses to ``spec_form``; ``"func"`` extracts the
    canonical polynomial over the *known* field (``k``/``modulus``) and
    matches it against the spec-form library. Shared engine behind batch
    ``reveng`` jobs and the service's ``POST /v1/reveng``.

    The reveng package is imported lazily: ``repro.reveng`` depends on
    ``repro.jobs.cache``, and a module-level import here would cycle through
    the :mod:`repro.jobs` package ``__init__``.
    """
    from ..reveng import identify_function, recover_polynomial

    counters = counters if counters is not None else _new_counters()
    mode = params.get("mode", "poly")
    case2 = params.get("case2", "linearized")
    jobs = params.get("jobs")
    prepass = params.get("prepass")
    circuit = _load_circuit(params, "netlist")

    if mode == "poly":
        degree = params.get("m")
        result = recover_polynomial(
            circuit,
            degree=int(degree) if degree is not None else None,
            spec_form=params.get("spec_form", "mul"),
            case2=case2,
            cache=cache,
            all_candidates=bool(params.get("all", False)),
            limit=int(params["limit"]) if params.get("limit") is not None else None,
            jobs=jobs,
            inflight=inflight,
            prepass=prepass,
        )
        body = {"mode": "poly"}
        body.update(result.to_dict())
    elif mode == "func":
        if params.get("k") is None:
            raise ValueError("reveng mode 'func' requires the field size 'k'")
        field = _field_for(params)
        outcome = identify_function(
            circuit,
            field,
            forms=params.get("forms") or (),
            case2=case2,
            cache=cache,
            jobs=jobs,
            inflight=inflight,
            prepass=prepass,
        )
        body = {"mode": "func", "k": field.k, "modulus": f"{field.modulus:#x}"}
        body.update(outcome.to_dict())
    else:
        raise ValueError(
            f"unknown reveng mode {mode!r}; expected 'poly' or 'func'"
        )

    # The engines time themselves; keep that under a distinct key so the
    # caller's job-level "seconds" (which includes parsing) survives the
    # record merge in execute_job.
    body["engine_seconds"] = body.pop("seconds", None)
    hits = body.get("cache_hits", 1 if body.get("cache_hit") else 0)
    probed = body.get("candidates_tried", 1)
    counters["hits"] += int(hits)
    counters["misses"] += int(probed) - int(hits)
    return body


def run_check_spec(params: Dict) -> Dict:
    """Run one check-spec job body (Lv-style ideal membership)."""
    field = _field_for(params)
    circuit = _load_circuit(params, "netlist")
    ring = word_ring_for(field, sorted(circuit.input_words))
    spec = parse_polynomial(params["spec_poly"], ring)
    outcome = check_ideal_membership(
        circuit, field, spec, output_word=params.get("output_word")
    )
    return {
        "verdict": outcome.status,
        "counterexample": outcome.counterexample,
        "spec_polynomial": str(spec),
        "details": {
            k: v
            for k, v in outcome.details.items()
            if isinstance(v, (int, float, str))
        },
    }


def _run_sleep(params: Dict) -> Dict:
    time.sleep(float(params["seconds"]))
    return {"slept": float(params["seconds"])}


def _run_crash(params: Dict, attempt: int) -> Dict:
    fail_attempts = int(params.get("fail_attempts", 1 << 30))
    if attempt <= fail_attempts:
        os._exit(66)  # simulate a hard worker death (OOM-kill / segfault)
    return {"survived_attempt": attempt}


def execute_job(
    job: Dict,
    cache_dir: Optional[str] = None,
    attempt: int = 1,
    seed: Optional[int] = None,
) -> Dict:
    """Run one batch job in-process and return its result record.

    Exceptions propagate — the pool wrapper converts them to ``failed``
    records; hard process deaths (the ``crash`` self-test, real OOM kills)
    surface to the parent as missing results and are retried there.

    The job runs under a fresh per-job trace collector (any collector the
    caller had active is restored afterwards and receives a merged copy of
    the job's telemetry). The returned record carries ``phases`` (derived
    from spans, backward-compatible schema), ``counters``/``gauges``
    (algebraic work), and the raw ``telemetry`` snapshot.
    """
    params = job.get("params", {})
    counters = _new_counters()
    cache = CanonicalPolyCache(cache_dir) if cache_dir else None
    job_seed = job.get("seed") if job.get("seed") is not None else seed

    previous = obs.active_collector()
    collector = obs.enable(obs.TraceCollector())
    obs.reset_context()  # a forked worker inherits the parent's current span
    job_type = job["type"]
    try:
        start = time.perf_counter()
        with obs.span("job", id=job["id"], type=job_type, attempt=attempt):
            if job_type == "verify":
                body = run_verify(params, cache, counters, job_seed)
            elif job_type == "abstract":
                body = run_abstract(params, cache, counters)
            elif job_type == "check-spec":
                body = run_check_spec(params)
            elif job_type == "reveng":
                body = run_reveng(params, cache, counters)
            elif job_type == "sleep":
                body = _run_sleep(params)
            elif job_type == "crash":
                body = _run_crash(params, attempt)
            else:
                raise ValueError(f"unknown job type {job_type!r}")
        seconds = time.perf_counter() - start
    finally:
        obs.disable()
        if previous is not None:
            obs.enable(previous)

    snapshot = collector.snapshot()
    if previous is not None:
        previous.merge(snapshot)
    phases = phases_from_spans(snapshot["spans"])
    for phase in _EXPECTED_PHASES.get(job_type, ()):
        phases.setdefault(phase, 0.0)

    result = {
        "id": job["id"],
        "type": job_type,
        "status": "ok",
        "attempt": attempt,
        "seconds": seconds,
        "kernel": kernels.active_kernel(),
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "cache": dict(counters),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "telemetry": snapshot,
    }
    result.update(body)
    return result
