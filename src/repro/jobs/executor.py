"""In-worker job execution with per-phase timings and cache integration.

:func:`execute_job` runs one :class:`~repro.jobs.manifest.BatchJob` (passed
as a plain dict so it crosses the process boundary cheaply) and returns a
JSON-serialisable result record. The phases mirror the paper's pipeline:

``parse``
    Netlist reading (BLIF / structural Verilog).
``rato_setup``
    Building the Refined Abstraction Term Order (Definition 5.1).
``spoly_reduction``
    The guided reduction ``Spoly(f_w, f_g) ->_{F, F0}+ r`` plus Case-2
    finishing — the dominant cost.
``coeff_match``
    Re-homing both canonical polynomials into a shared ring and comparing
    coefficients (plus counterexample search on mismatch).

Canonical polynomials route through the content-addressed cache when a
``cache_dir`` is given: a warm hit skips ``rato_setup`` and
``spoly_reduction`` entirely, which is exactly what the run log's phase
records make visible.
"""

from __future__ import annotations

import os
import random
import resource
import time
from typing import Dict, Optional, Tuple

from ..algebra import parse_polynomial
from ..circuits import Circuit, read_netlist
from ..core import abstract_circuit, build_rato, word_ring_for
from ..gf import GF2m
from ..verify import check_ideal_membership, find_nonzero_point
from ..verify.equivalence import counterexample_by_simulation
from .cache import (
    CanonicalPolyCache,
    canonical_cache_key,
    polynomial_payload,
    rehydrate_polynomial,
)

__all__ = ["execute_job"]

#: Polynomials larger than this many characters are elided in result
#: records — buggy Case-2 abstractions can be astronomically dense, and the
#: run log should stay grep-able.
_MAX_POLY_CHARS = 2000


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _field_for(params: Dict) -> GF2m:
    modulus = params.get("modulus")
    if isinstance(modulus, str):
        modulus = int(modulus, 0)
    return GF2m(int(params["k"]), modulus=modulus)


def _poly_str(polynomial, output_word: str) -> str:
    text = f"{output_word} = {polynomial}"
    if len(text) > _MAX_POLY_CHARS:
        return text[:_MAX_POLY_CHARS] + f"... [{len(polynomial)} terms]"
    return text


def _cached_canonical(
    circuit: Circuit,
    field: GF2m,
    case2: str,
    output_word: Optional[str],
    cache: Optional[CanonicalPolyCache],
    phases: Dict[str, float],
) -> Tuple[Dict, bool]:
    """Canonical-polynomial payload for a flat circuit, cache-aware.

    Returns ``(payload, hit)``; on a miss the RATO and reduction phase
    timings accumulate into ``phases``.
    """

    def compute() -> Dict:
        t0 = time.perf_counter()
        words = [output_word] if output_word else None
        ordering = build_rato(circuit, output_words=words)
        phases["rato_setup"] = phases.get("rato_setup", 0.0) + (
            time.perf_counter() - t0
        )
        t1 = time.perf_counter()
        result = abstract_circuit(
            circuit, field, output_word=output_word, case2=case2, ordering=ordering
        )
        phases["spoly_reduction"] = phases.get("spoly_reduction", 0.0) + (
            time.perf_counter() - t1
        )
        return polynomial_payload(result)

    if cache is None:
        return compute(), False
    key = canonical_cache_key(circuit, field, case2=case2, output_word=output_word)
    return cache.get_or_compute(key, compute)


def _run_verify(
    params: Dict,
    cache: Optional[CanonicalPolyCache],
    phases: Dict[str, float],
    counters: Dict[str, int],
    seed: Optional[int],
) -> Dict:
    field = _field_for(params)
    case2 = params.get("case2", "linearized")

    t0 = time.perf_counter()
    spec = read_netlist(params["spec"])
    impl = read_netlist(params["impl"])
    phases["parse"] = time.perf_counter() - t0

    spec_payload, spec_hit = _cached_canonical(
        spec, field, case2, None, cache, phases
    )
    impl_payload, impl_hit = _cached_canonical(
        impl, field, case2, None, cache, phases
    )
    counters["hits"] += int(spec_hit) + int(impl_hit)
    counters["misses"] += int(not spec_hit) + int(not impl_hit)

    t1 = time.perf_counter()
    spec_poly = rehydrate_polynomial(spec_payload, field)
    impl_poly = rehydrate_polynomial(impl_payload, field)
    shared_words = sorted(spec_payload["input_words"])
    if sorted(impl_payload["input_words"]) != shared_words:
        raise ValueError(
            f"input words do not match: spec {shared_words}, "
            f"impl {sorted(impl_payload['input_words'])}"
        )
    ring = word_ring_for(field, shared_words)

    def rehome(poly):
        source = poly.ring
        data = {}
        for monomial, coeff in poly.terms.items():
            key = tuple(
                sorted((ring.index[source.variables[v]], e) for v, e in monomial)
            )
            data[key] = coeff
        return type(poly)(ring, data)

    spec_canonical = rehome(spec_poly)
    impl_canonical = rehome(impl_poly)
    equivalent = spec_canonical == impl_canonical
    counterexample = None
    if not equivalent:
        rng = random.Random(0xDAC14 if seed is None else seed)
        counterexample = counterexample_by_simulation(
            spec, impl, field, shared_words, {}, rng=rng
        )
        if counterexample is None:
            counterexample = find_nonzero_point(
                spec_canonical + impl_canonical,
                exhaustive_limit=1 << 12,
                samples=500,
                rng=random.Random(2014 if seed is None else seed + 1),
            )
    phases["coeff_match"] = time.perf_counter() - t1
    return {
        "verdict": "equivalent" if equivalent else "not_equivalent",
        "counterexample": counterexample,
        "spec_polynomial": _poly_str(spec_canonical, spec_payload["output_word"]),
        "spec_terms": len(spec_canonical),
        "impl_terms": len(impl_canonical),
        "spec_cache_hit": spec_hit,
        "impl_cache_hit": impl_hit,
        "spec_case": spec_payload["stats"]["case"],
        "impl_case": impl_payload["stats"]["case"],
    }


def _run_abstract(
    params: Dict,
    cache: Optional[CanonicalPolyCache],
    phases: Dict[str, float],
    counters: Dict[str, int],
) -> Dict:
    field = _field_for(params)
    case2 = params.get("case2", "linearized")
    t0 = time.perf_counter()
    circuit = read_netlist(params["netlist"])
    phases["parse"] = time.perf_counter() - t0
    payload, hit = _cached_canonical(
        circuit, field, case2, params.get("output_word"), cache, phases
    )
    counters["hits"] += int(hit)
    counters["misses"] += int(not hit)
    polynomial = rehydrate_polynomial(payload, field)
    return {
        "polynomial": _poly_str(polynomial, payload["output_word"]),
        "terms": len(polynomial),
        "case": payload["stats"]["case"],
        "cache_hit": hit,
        "abstraction_stats": payload["stats"],
    }


def _run_check_spec(params: Dict, phases: Dict[str, float]) -> Dict:
    field = _field_for(params)
    t0 = time.perf_counter()
    circuit = read_netlist(params["netlist"])
    phases["parse"] = time.perf_counter() - t0
    ring = word_ring_for(field, sorted(circuit.input_words))
    spec = parse_polynomial(params["spec_poly"], ring)
    t1 = time.perf_counter()
    outcome = check_ideal_membership(
        circuit, field, spec, output_word=params.get("output_word")
    )
    phases["spoly_reduction"] = time.perf_counter() - t1
    return {
        "verdict": outcome.status,
        "counterexample": outcome.counterexample,
        "spec_polynomial": str(spec),
        "details": {
            k: v
            for k, v in outcome.details.items()
            if isinstance(v, (int, float, str))
        },
    }


def _run_sleep(params: Dict) -> Dict:
    time.sleep(float(params["seconds"]))
    return {"slept": float(params["seconds"])}


def _run_crash(params: Dict, attempt: int) -> Dict:
    fail_attempts = int(params.get("fail_attempts", 1 << 30))
    if attempt <= fail_attempts:
        os._exit(66)  # simulate a hard worker death (OOM-kill / segfault)
    return {"survived_attempt": attempt}


def execute_job(
    job: Dict,
    cache_dir: Optional[str] = None,
    attempt: int = 1,
    seed: Optional[int] = None,
) -> Dict:
    """Run one batch job in-process and return its result record.

    Exceptions propagate — the pool wrapper converts them to ``failed``
    records; hard process deaths (the ``crash`` self-test, real OOM kills)
    surface to the parent as missing results and are retried there.
    """
    params = job.get("params", {})
    phases: Dict[str, float] = {}
    counters = {"hits": 0, "misses": 0}
    cache = CanonicalPolyCache(cache_dir) if cache_dir else None
    job_seed = job.get("seed") if job.get("seed") is not None else seed

    start = time.perf_counter()
    job_type = job["type"]
    if job_type == "verify":
        body = _run_verify(params, cache, phases, counters, job_seed)
    elif job_type == "abstract":
        body = _run_abstract(params, cache, phases, counters)
    elif job_type == "check-spec":
        body = _run_check_spec(params, phases)
    elif job_type == "sleep":
        body = _run_sleep(params)
    elif job_type == "crash":
        body = _run_crash(params, attempt)
    else:
        raise ValueError(f"unknown job type {job_type!r}")

    result = {
        "id": job["id"],
        "type": job_type,
        "status": "ok",
        "attempt": attempt,
        "seconds": time.perf_counter() - start,
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "cache": dict(counters),
    }
    result.update(body)
    return result
