"""In-worker job execution with span-derived phase timings and cache hits.

:func:`execute_job` runs one :class:`~repro.jobs.manifest.BatchJob` (passed
as a plain dict so it crosses the process boundary cheaply) and returns a
JSON-serialisable result record. Each job runs under its own
:class:`~repro.obs.spans.TraceCollector`; the record's ``phases`` map —
the run log's historical schema — is *derived* from the recorded spans,
and the full span snapshot travels alongside as ``telemetry`` so the pool
parent can merge it or export per-job Chrome traces. The phases mirror
the paper's pipeline:

``parse``
    Netlist reading (BLIF / structural Verilog).
``rato_setup``
    Building the Refined Abstraction Term Order (Definition 5.1).
``spoly_reduction``
    The guided reduction ``Spoly(f_w, f_g) ->_{F, F0}+ r`` plus Case-2
    finishing — the dominant cost.
``coeff_match``
    Re-homing both canonical polynomials into a shared ring and comparing
    coefficients (plus counterexample search on mismatch).

Canonical polynomials route through the content-addressed cache when a
``cache_dir`` is given. A warm hit skips ``rato_setup`` and
``spoly_reduction`` entirely — those phases are still emitted as explicit
zeros (with per-side ``*_cache_hit`` flags) so downstream aggregation
never KeyErrors and cache wins don't skew phase averages by dropping out
of the denominator.
"""

from __future__ import annotations

import os
import random
import resource
import time
from typing import Dict, Optional, Tuple

from .. import kernels, obs
from ..obs import redtrace
from ..algebra import parse_polynomial
from ..circuits import Circuit, read_netlist, read_netlist_text
from ..core import extract_canonical, word_ring_for
from ..gf import GF2m
from ..obs import metrics
from ..verify import check_ideal_membership, find_nonzero_point
from ..verify.equivalence import counterexample_by_simulation
from .cache import (
    CanonicalPolyCache,
    canonical_cache_key,
    polynomial_payload,
    rehydrate_polynomial,
)

__all__ = [
    "execute_job",
    "phases_from_spans",
    "run_abstract",
    "run_check_spec",
    "run_reveng",
    "run_verify",
]

#: Polynomials larger than this many characters are elided in result
#: records — buggy Case-2 abstractions can be astronomically dense, and the
#: run log should stay grep-able.
_MAX_POLY_CHARS = 2000

#: Span name -> run-log phase. ``case2_finish`` folds into
#: ``spoly_reduction`` because the historical phase timed the whole
#: abstraction step (Section 5's reduction plus its Case-2 epilogue).
_PHASE_OF_SPAN = {
    "parse": "parse",
    "rato_setup": "rato_setup",
    "spoly_reduction": "spoly_reduction",
    "case2_finish": "spoly_reduction",
    "coeff_match": "coeff_match",
    # The parallel path's "cone_slicing"/"cone_reduction" spans are
    # deliberately unmapped: the umbrella "spoly_reduction" span already
    # covers the pool's wall clock, and folding the per-cone worker spans
    # in as well would double-count the phase. They still ride along in
    # ``telemetry`` for flamegraphs.
}

#: Phases emitted as explicit zeros when nothing contributed to them
#: (cache hits), keyed by job type.
_EXPECTED_PHASES = {
    "verify": ("parse", "rato_setup", "spoly_reduction", "coeff_match"),
    "abstract": ("parse", "rato_setup", "spoly_reduction"),
    "check-spec": ("parse", "rato_setup", "spoly_reduction"),
    "reveng": ("parse", "rato_setup", "spoly_reduction"),
}


def phases_from_spans(spans) -> Dict[str, float]:
    """Fold span durations into the run log's flat ``phases`` map."""
    phases: Dict[str, float] = {}
    for record in spans:
        phase = _PHASE_OF_SPAN.get(record["name"])
        if phase is not None:
            phases[phase] = phases.get(phase, 0.0) + record["dur"]
    return phases


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _field_for(params: Dict) -> GF2m:
    modulus = params.get("modulus")
    if isinstance(modulus, str):
        modulus = int(modulus, 0)
    return GF2m(int(params["k"]), modulus=modulus)


def _load_circuit(params: Dict, key: str) -> Circuit:
    """Load the netlist named by ``params[key]``, path- or body-based.

    Batch manifests carry filesystem paths (``params["spec"]``); the
    verification service streams netlist *bodies* in the request instead
    (``params["spec_text"]``), since the daemon may not share a filesystem
    with its clients. A ``<key>_text`` entry wins over a path.
    """
    text = params.get(f"{key}_text")
    if text is not None:
        return read_netlist_text(text, name=str(params.get(key) or f"<{key}>"))
    return read_netlist(params[key])


def _poly_str(polynomial, output_word: str) -> str:
    text = f"{output_word} = {polynomial}"
    if len(text) > _MAX_POLY_CHARS:
        return text[:_MAX_POLY_CHARS] + f"... [{len(polynomial)} terms]"
    return text


def _cached_canonical(
    circuit: Circuit,
    field: GF2m,
    case2: str,
    output_word: Optional[str],
    cache: Optional[CanonicalPolyCache],
    counters: Dict[str, int],
    jobs: Optional[int] = None,
    inflight=None,
) -> Tuple[Dict, bool]:
    """Canonical-polynomial payload for a flat circuit, cache-aware.

    Returns ``(payload, hit)``. On a miss the RATO and reduction work runs
    inside :func:`~repro.core.abstraction.extract_canonical`, whose spans
    feed the job's phase timings; on a hit neither span fires and the
    executor reports both phases as explicit zeros. ``jobs`` selects the
    cone-sliced parallel path on a miss — it stays out of the cache key
    because both paths produce bit-identical polynomials.

    ``inflight`` is an optional single-flight group (an object with
    ``do(key, fn) -> (value, shared)``, see
    :class:`repro.service.singleflight.SingleFlight`): concurrent callers in
    the same process racing on one key then run ``fn`` once and share its
    result without ever blocking on the cache's per-key file lock. A shared
    result counts as a hit — the caller avoided the computation.
    """

    def compute() -> Dict:
        result = extract_canonical(
            circuit, field, output_word=output_word, case2=case2, jobs=jobs
        )
        return polynomial_payload(result)

    def compute_cached() -> Tuple[Dict, bool]:
        if cache is None:
            return compute(), False
        return cache.get_or_compute(key, compute)

    if cache is None and inflight is None:
        payload, hit = compute(), False
    else:
        key = canonical_cache_key(
            circuit, field, case2=case2, output_word=output_word
        )
        if inflight is None:
            payload, hit = cache.get_or_compute(key, compute)
        else:
            (payload, hit), shared = inflight.do(key, compute_cached)
            hit = hit or shared
    counters["hits"] += int(hit)
    counters["misses"] += int(not hit)
    metrics.counter_add(metrics.CACHE_HITS if hit else metrics.CACHE_MISSES, 1)
    rtw = redtrace.active_writer()
    if rtw is not None and (cache is not None or inflight is not None):
        # Environment-dependent by nature (a warm cache answers differently
        # than a cold one), so the replay differ never sees these: the
        # `repro verify --record` path runs cache-less. They exist for the
        # daemon's flight recorder.
        rtw.emit("cache_probe", key=key[:16], hit=bool(hit))
    return payload, hit


def run_verify(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    seed: Optional[int] = None,
    inflight=None,
) -> Dict:
    """Run one verify job body: abstract both sides and coefficient-match.

    The shared engine behind batch ``verify`` jobs and the service's
    ``POST /v1/verify``. ``params`` uses the manifest schema; netlists may
    arrive as paths (``spec``/``impl``) or as streamed bodies
    (``spec_text``/``impl_text``). ``inflight`` forwards to
    :func:`_cached_canonical` for in-process single-flight dedup.
    """
    counters = counters if counters is not None else {"hits": 0, "misses": 0}
    field = _field_for(params)
    case2 = params.get("case2", "linearized")
    jobs = params.get("jobs")

    spec = _load_circuit(params, "spec")
    impl = _load_circuit(params, "impl")

    spec_payload, spec_hit = _cached_canonical(
        spec, field, case2, None, cache, counters, jobs=jobs, inflight=inflight
    )
    impl_payload, impl_hit = _cached_canonical(
        impl, field, case2, None, cache, counters, jobs=jobs, inflight=inflight
    )

    with obs.span("coeff_match"):
        spec_poly = rehydrate_polynomial(spec_payload, field)
        impl_poly = rehydrate_polynomial(impl_payload, field)
        shared_words = sorted(spec_payload["input_words"])
        if sorted(impl_payload["input_words"]) != shared_words:
            raise ValueError(
                f"input words do not match: spec {shared_words}, "
                f"impl {sorted(impl_payload['input_words'])}"
            )
        ring = word_ring_for(field, shared_words)

        def rehome(poly):
            source = poly.ring
            data = {}
            for monomial, coeff in poly.terms.items():
                key = tuple(
                    sorted((ring.index[source.variables[v]], e) for v, e in monomial)
                )
                data[key] = coeff
            return type(poly)(ring, data)

        spec_canonical = rehome(spec_poly)
        impl_canonical = rehome(impl_poly)
        equivalent = spec_canonical == impl_canonical
        counterexample = None
        if not equivalent:
            rng = random.Random(0xDAC14 if seed is None else seed)
            counterexample = counterexample_by_simulation(
                spec, impl, field, shared_words, {}, rng=rng
            )
            if counterexample is None:
                counterexample = find_nonzero_point(
                    spec_canonical + impl_canonical,
                    exhaustive_limit=1 << 12,
                    samples=500,
                    rng=random.Random(2014 if seed is None else seed + 1),
                )
    return {
        "verdict": "equivalent" if equivalent else "not_equivalent",
        "counterexample": counterexample,
        "spec_polynomial": _poly_str(spec_canonical, spec_payload["output_word"]),
        "spec_terms": len(spec_canonical),
        "impl_terms": len(impl_canonical),
        "spec_cache_hit": spec_hit,
        "impl_cache_hit": impl_hit,
        "spec_case": spec_payload["stats"]["case"],
        "impl_case": impl_payload["stats"]["case"],
        # Cost-model features: field width, total gate count across both
        # sides, total cone count (0 on the serial path / old cache entries).
        "k": field.k,
        "gates": spec.num_gates() + impl.num_gates(),
        "cones": (
            (spec_payload["stats"].get("cones") or 0)
            + (impl_payload["stats"].get("cones") or 0)
        ),
    }


def run_abstract(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
) -> Dict:
    """Run one abstract job body: a single circuit's canonical polynomial."""
    counters = counters if counters is not None else {"hits": 0, "misses": 0}
    field = _field_for(params)
    case2 = params.get("case2", "linearized")
    circuit = _load_circuit(params, "netlist")
    payload, hit = _cached_canonical(
        circuit, field, case2, params.get("output_word"), cache, counters,
        jobs=params.get("jobs"), inflight=inflight,
    )
    polynomial = rehydrate_polynomial(payload, field)
    return {
        "polynomial": _poly_str(polynomial, payload["output_word"]),
        "terms": len(polynomial),
        "case": payload["stats"]["case"],
        "cache_hit": hit,
        "abstraction_stats": payload["stats"],
        "k": field.k,
        "gates": circuit.num_gates(),
        "cones": payload["stats"].get("cones") or 0,
    }


def run_reveng(
    params: Dict,
    cache: Optional[CanonicalPolyCache] = None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
) -> Dict:
    """Run one reveng job body: polynomial recovery or function identification.

    ``params["mode"]`` selects the engine: ``"poly"`` (default) sweeps
    candidate irreducible polynomials of degree ``m`` until the netlist's
    canonical polynomial collapses to ``spec_form``; ``"func"`` extracts the
    canonical polynomial over the *known* field (``k``/``modulus``) and
    matches it against the spec-form library. Shared engine behind batch
    ``reveng`` jobs and the service's ``POST /v1/reveng``.

    The reveng package is imported lazily: ``repro.reveng`` depends on
    ``repro.jobs.cache``, and a module-level import here would cycle through
    the :mod:`repro.jobs` package ``__init__``.
    """
    from ..reveng import identify_function, recover_polynomial

    counters = counters if counters is not None else {"hits": 0, "misses": 0}
    mode = params.get("mode", "poly")
    case2 = params.get("case2", "linearized")
    jobs = params.get("jobs")
    circuit = _load_circuit(params, "netlist")

    if mode == "poly":
        degree = params.get("m")
        result = recover_polynomial(
            circuit,
            degree=int(degree) if degree is not None else None,
            spec_form=params.get("spec_form", "mul"),
            case2=case2,
            cache=cache,
            all_candidates=bool(params.get("all", False)),
            limit=int(params["limit"]) if params.get("limit") is not None else None,
            jobs=jobs,
            inflight=inflight,
        )
        body = {"mode": "poly"}
        body.update(result.to_dict())
    elif mode == "func":
        if params.get("k") is None:
            raise ValueError("reveng mode 'func' requires the field size 'k'")
        field = _field_for(params)
        outcome = identify_function(
            circuit,
            field,
            forms=params.get("forms") or (),
            case2=case2,
            cache=cache,
            jobs=jobs,
            inflight=inflight,
        )
        body = {"mode": "func", "k": field.k, "modulus": f"{field.modulus:#x}"}
        body.update(outcome.to_dict())
    else:
        raise ValueError(
            f"unknown reveng mode {mode!r}; expected 'poly' or 'func'"
        )

    # The engines time themselves; keep that under a distinct key so the
    # caller's job-level "seconds" (which includes parsing) survives the
    # record merge in execute_job.
    body["engine_seconds"] = body.pop("seconds", None)
    hits = body.get("cache_hits", 1 if body.get("cache_hit") else 0)
    probed = body.get("candidates_tried", 1)
    counters["hits"] += int(hits)
    counters["misses"] += int(probed) - int(hits)
    return body


def run_check_spec(params: Dict) -> Dict:
    """Run one check-spec job body (Lv-style ideal membership)."""
    field = _field_for(params)
    circuit = _load_circuit(params, "netlist")
    ring = word_ring_for(field, sorted(circuit.input_words))
    spec = parse_polynomial(params["spec_poly"], ring)
    outcome = check_ideal_membership(
        circuit, field, spec, output_word=params.get("output_word")
    )
    return {
        "verdict": outcome.status,
        "counterexample": outcome.counterexample,
        "spec_polynomial": str(spec),
        "details": {
            k: v
            for k, v in outcome.details.items()
            if isinstance(v, (int, float, str))
        },
    }


def _run_sleep(params: Dict) -> Dict:
    time.sleep(float(params["seconds"]))
    return {"slept": float(params["seconds"])}


def _run_crash(params: Dict, attempt: int) -> Dict:
    fail_attempts = int(params.get("fail_attempts", 1 << 30))
    if attempt <= fail_attempts:
        os._exit(66)  # simulate a hard worker death (OOM-kill / segfault)
    return {"survived_attempt": attempt}


def execute_job(
    job: Dict,
    cache_dir: Optional[str] = None,
    attempt: int = 1,
    seed: Optional[int] = None,
) -> Dict:
    """Run one batch job in-process and return its result record.

    Exceptions propagate — the pool wrapper converts them to ``failed``
    records; hard process deaths (the ``crash`` self-test, real OOM kills)
    surface to the parent as missing results and are retried there.

    The job runs under a fresh per-job trace collector (any collector the
    caller had active is restored afterwards and receives a merged copy of
    the job's telemetry). The returned record carries ``phases`` (derived
    from spans, backward-compatible schema), ``counters``/``gauges``
    (algebraic work), and the raw ``telemetry`` snapshot.
    """
    params = job.get("params", {})
    counters = {"hits": 0, "misses": 0}
    cache = CanonicalPolyCache(cache_dir) if cache_dir else None
    job_seed = job.get("seed") if job.get("seed") is not None else seed

    previous = obs.active_collector()
    collector = obs.enable(obs.TraceCollector())
    obs.reset_context()  # a forked worker inherits the parent's current span
    job_type = job["type"]
    try:
        start = time.perf_counter()
        with obs.span("job", id=job["id"], type=job_type, attempt=attempt):
            if job_type == "verify":
                body = run_verify(params, cache, counters, job_seed)
            elif job_type == "abstract":
                body = run_abstract(params, cache, counters)
            elif job_type == "check-spec":
                body = run_check_spec(params)
            elif job_type == "reveng":
                body = run_reveng(params, cache, counters)
            elif job_type == "sleep":
                body = _run_sleep(params)
            elif job_type == "crash":
                body = _run_crash(params, attempt)
            else:
                raise ValueError(f"unknown job type {job_type!r}")
        seconds = time.perf_counter() - start
    finally:
        obs.disable()
        if previous is not None:
            obs.enable(previous)

    snapshot = collector.snapshot()
    if previous is not None:
        previous.merge(snapshot)
    phases = phases_from_spans(snapshot["spans"])
    for phase in _EXPECTED_PHASES.get(job_type, ()):
        phases.setdefault(phase, 0.0)

    result = {
        "id": job["id"],
        "type": job_type,
        "status": "ok",
        "attempt": attempt,
        "seconds": seconds,
        "kernel": kernels.active_kernel(),
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "peak_rss_mb": round(_peak_rss_mb(), 1),
        "cache": dict(counters),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "telemetry": snapshot,
    }
    result.update(body)
    return result
