"""Full Gröbner-basis abstraction — the paper's SINGULAR ``slimgb`` baseline.

Section 6: "we use the SINGULAR computer algebra tool to derive the
polynomial abstraction by computing a full Gröbner basis of J + J_0 ...
and find the technique is infeasible (memory explosion) beyond only 32-bit
circuits". This module reproduces that experiment with the built-in
Buchberger: extract the whole circuit ideal, compute a reduced basis under
the abstraction (lex) order, and fish out ``Z + G(A)`` — with a basis-size
budget standing in for the memory limit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..algebra import GroebnerStats, Polynomial, reduced_groebner_basis
from ..circuits import Circuit
from ..core.extractor import circuit_ideal
from ..gf import GF2m

__all__ = ["FullGroebnerResult", "abstract_via_full_groebner"]


@dataclass
class FullGroebnerResult:
    """Outcome of the full-GB abstraction baseline."""

    polynomial: Optional[Polynomial]  # Z + G(A,...) from the basis, or None
    completed: bool
    seconds: float
    stats: GroebnerStats
    basis_size: int = 0


def abstract_via_full_groebner(
    circuit: Circuit,
    field: GF2m,
    output_word: Optional[str] = None,
    max_basis: Optional[int] = 20000,
    deadline_seconds: Optional[float] = 60.0,
) -> FullGroebnerResult:
    """Compute GB(J + J_0) under the abstraction order and extract Z + G.

    Exponential in general — exactly why Section 5 exists. ``max_basis``
    bounds the basis size and ``deadline_seconds`` the wall clock;
    exceeding either reports ``completed=False`` (the "memory explosion" /
    24h-timeout outcomes from the paper's Section 6 discussion).
    """
    start = time.perf_counter()
    if output_word is None:
        if len(circuit.output_words) != 1:
            raise ValueError("output_word must be named for multi-word circuits")
        output_word = next(iter(circuit.output_words))
    ideal = circuit_ideal(circuit, field)
    stats = GroebnerStats()
    generators = ideal.generators + ideal.vanishing
    try:
        basis = reduced_groebner_basis(
            generators,
            max_basis=max_basis,
            stats=stats,
            deadline_seconds=deadline_seconds,
        )
    except RuntimeError:
        return FullGroebnerResult(
            None, False, time.perf_counter() - start, stats
        )
    z_index = ideal.ring.index[output_word]
    matches = [p for p in basis if p.leading_monomial() == ((z_index, 1),)]
    elapsed = time.perf_counter() - start
    if len(matches) != 1:
        return FullGroebnerResult(None, False, elapsed, stats, len(basis))
    return FullGroebnerResult(matches[0], True, elapsed, stats, len(basis))
