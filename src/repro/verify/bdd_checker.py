"""BDD-based equivalence checking (the canonical-DAG baseline of Sec. 2).

Builds both circuits' output BDDs over a shared input-variable order and
compares node ids — ROBDD canonicity makes this a constant-time comparison
once the BDDs exist. The catch (and the point of the benchmark): multiplier
output BDDs grow exponentially in the word width, so a node budget converts
the blow-up into an ``unknown`` verdict.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..bdd import BddManager, BddOverflow, build_circuit_bdds
from ..circuits import Circuit
from ..obs import metrics
from ..obs.spans import span
from .outcome import EquivalenceOutcome

__all__ = ["check_equivalence_bdd"]


def check_equivalence_bdd(
    spec: Circuit,
    impl: Circuit,
    max_nodes: Optional[int] = None,
    word_map: Optional[Dict[str, str]] = None,
    output_map: Optional[Dict[str, str]] = None,
) -> EquivalenceOutcome:
    """Prove/refute equivalence by comparing canonical output BDDs.

    ``word_map``/``output_map`` rename impl words to spec words (identity
    by default).
    """
    start = time.perf_counter()
    word_map = word_map or {}
    output_map = output_map or {}
    impl_inputs = {word_map.get(w, w): b for w, b in impl.input_words.items()}
    impl_outputs = {output_map.get(w, w): b for w, b in impl.output_words.items()}
    if set(spec.input_words) != set(impl_inputs) or set(
        spec.output_words
    ) != set(impl_outputs):
        raise ValueError("circuits have different word interfaces")
    for w, bits in spec.input_words.items():
        if len(bits) != len(impl_inputs[w]):
            raise ValueError(f"input word {w!r} has different widths")
    for w, bits in spec.output_words.items():
        if len(bits) != len(impl_outputs[w]):
            raise ValueError(f"output word {w!r} has different widths")

    # Shared variable order: interleave word bits (good default for mults).
    words = sorted(spec.input_words)
    width = max(len(spec.input_words[w]) for w in words)
    shared_index: Dict[str, int] = {}
    position = 0
    for i in range(width):
        for w in words:
            bits = spec.input_words[w]
            if i < len(bits):
                shared_index[f"{w}:{i}"] = position
                position += 1
    manager = BddManager(position, max_nodes=max_nodes)

    def input_vars(word_bits: Dict[str, "list[str]"]) -> Dict[str, int]:
        mapping = {}
        for w in words:
            for i, net in enumerate(word_bits[w]):
                mapping[net] = manager.var(shared_index[f"{w}:{i}"])
        return mapping

    try:
        with span("bdd_miter", budget=max_nodes):
            spec_values = build_circuit_bdds(
                spec, manager, input_vars=input_vars(spec.input_words)
            )
            impl_values = build_circuit_bdds(
                impl, manager, input_vars=input_vars(impl_inputs)
            )
            diff = 0  # BDD FALSE
            for word in sorted(spec.output_words):
                for sb, ib in zip(spec.output_words[word], impl_outputs[word]):
                    diff = manager.apply_or(
                        diff, manager.apply_xor(spec_values[sb], impl_values[ib])
                    )
    except BddOverflow:
        metrics.gauge_max(metrics.BDD_NODES, manager.num_nodes())
        return EquivalenceOutcome(
            "unknown",
            "bdd-miter",
            None,
            time.perf_counter() - start,
            {"nodes": manager.num_nodes(), "budget": max_nodes},
        )
    metrics.gauge_max(metrics.BDD_NODES, manager.num_nodes())
    elapsed = time.perf_counter() - start
    details = {"nodes": manager.num_nodes(), "diff_size": manager.size(diff)}
    if diff == 0:
        return EquivalenceOutcome("equivalent", "bdd-miter", None, elapsed, details)
    witness = manager.any_sat(diff)
    counterexample = {}
    for w in words:
        value = 0
        for i in range(len(spec.input_words[w])):
            value |= witness[shared_index[f"{w}:{i}"]] << i
        counterexample[w] = value
    return EquivalenceOutcome(
        "not_equivalent", "bdd-miter", counterexample, elapsed, details
    )
