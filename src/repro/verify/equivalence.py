"""Top-level equivalence verification (the paper's main flow).

``verify_equivalence(spec, impl, field)`` abstracts both designs to their
canonical word-level polynomials ``F1, F2`` and decides equivalence by
coefficient matching — Section 6's methodology. Either side may be a flat
:class:`~repro.circuits.Circuit` or a
:class:`~repro.circuits.HierarchicalCircuit` (abstracted block-by-block and
composed at word level, as in the Montgomery experiments of Table 2).

This is *the* pipeline: flat sides route through
:func:`repro.prepass.abstract_canonical` — structural prepass, then the
content-addressed cache (canonical key first, raw key fallback), then
:func:`~repro.core.extract_canonical` — which is the same engine the batch
executor and the service scheduler call, so CLI, batch, and service cannot
diverge. The prepass is function-preserving, and by Corollary 4.1 a
circuit's canonical polynomial is unique, so prepass-on and prepass-off
runs produce identical polynomials and verdicts; counterexample search
always simulates the *original* circuits.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Union

from ..algebra import Polynomial
from ..circuits import Circuit, HierarchicalCircuit, simulate_words
from ..core import abstract_hierarchy, extract_canonical, word_ring_for
from ..gf import GF2m
from ..obs.spans import span
from .counterexample import find_nonzero_point
from .outcome import EquivalenceOutcome

__all__ = [
    "verify_equivalence",
    "canonical_polynomial",
    "counterexample_by_simulation",
]

Design = Union[Circuit, HierarchicalCircuit]


def canonical_polynomial(
    design: Design,
    field: GF2m,
    output_word: Optional[str] = None,
    case2: str = "linearized",
    jobs: Optional[int] = None,
) -> "tuple[Polynomial, Dict[str, object]]":
    """Canonical polynomial of a flat or hierarchical design, plus stats.

    ``jobs`` enables the cone-sliced parallel abstraction for flat circuits
    (see :func:`repro.core.extract_canonical`). Hierarchical designs are
    already decomposed block-by-block, and each block sits below the
    parallel cost threshold, so they ignore it.
    """
    if isinstance(design, HierarchicalCircuit):
        result = abstract_hierarchy(design, field, case2=case2)
        if output_word is None:
            if len(result.polynomials) != 1:
                raise ValueError("output_word must be named for multi-word designs")
            output_word = next(iter(result.polynomials))
        stats: Dict[str, object] = {
            "blocks": {
                name: {
                    "case": block.stats.case,
                    "seconds": block.stats.seconds,
                    "peak_terms": block.stats.peak_terms,
                    "gates": block.stats.gate_count,
                }
                for name, block in result.block_results.items()
            },
            "compose_seconds": result.compose_seconds,
            "seconds": result.total_seconds,
        }
        return result.polynomials[output_word], stats
    result = extract_canonical(
        design, field, output_word=output_word, case2=case2, jobs=jobs
    )
    stats = {
        "case": result.stats.case,
        "seconds": result.stats.seconds,
        "peak_terms": result.stats.peak_terms,
        "gates": result.stats.gate_count,
    }
    if result.stats.jobs:
        stats["parallel"] = {
            "jobs": result.stats.jobs,
            "cones": result.stats.cones,
            "cone_division_steps": list(result.stats.cone_division_steps),
            "pool_utilization_pct": round(result.stats.pool_utilization_pct, 1),
            "pool_idle_seconds": round(result.stats.pool_idle_seconds, 4),
            "table_rebuilds": result.stats.table_rebuilds,
        }
    return result.polynomial, stats


def _input_words(design: Design) -> "list[str]":
    if isinstance(design, HierarchicalCircuit):
        return list(design.input_words)
    return list(design.input_words)


def _simulate_design(
    design: Design, stimuli: Dict[str, List[int]]
) -> Dict[str, List[int]]:
    if isinstance(design, HierarchicalCircuit):
        return design.simulate_words(stimuli)
    return simulate_words(design, stimuli)


def counterexample_by_simulation(
    spec: Design,
    impl: Design,
    field: GF2m,
    spec_words: List[str],
    word_map: Dict[str, str],
    spec_output: Optional[str] = None,
    impl_output: Optional[str] = None,
    batches: int = 8,
    lanes: int = 512,
    rng: Optional[random.Random] = None,
) -> Optional[Dict[str, int]]:
    """Find a differing input by random batched simulation.

    Far cheaper than evaluating dense canonical polynomials: one
    bit-parallel sweep checks hundreds of points. Canonical polynomials that
    differ correspond to functions that differ, and injected-bug differences
    are rarely confined to a negligible input fraction, so a few thousand
    samples almost always suffice; callers fall back to the algebraic search
    when this returns None. Pass ``rng`` for a reproducible search (the
    default generator is seeded, so repeat runs already agree).
    """
    rng = rng or random.Random(0xDAC14)
    reverse_map = {word_map.get(w, w): w for w in (word_map or {})}
    impl_words = [reverse_map.get(w, w) for w in spec_words]
    q = field.order
    exhaustive_points = None
    if q ** len(spec_words) <= lanes * batches:
        from itertools import product as cartesian_product

        exhaustive_points = list(
            cartesian_product(range(q), repeat=len(spec_words))
        )
    for batch in range(batches):
        if exhaustive_points is not None:
            lo = batch * lanes
            points = exhaustive_points[lo : lo + lanes]
            if not points:
                break
            stimuli = {
                w: [p[i] for p in points] for i, w in enumerate(spec_words)
            }
        else:
            stimuli = {
                w: [rng.randrange(q) for _ in range(lanes)] for w in spec_words
            }
        spec_results = _simulate_design(spec, stimuli)
        spec_out = spec_results[spec_output] if spec_output else next(
            iter(spec_results.values())
        )
        impl_stimuli = {
            impl_words[i]: stimuli[w] for i, w in enumerate(spec_words)
        }
        impl_results = _simulate_design(impl, impl_stimuli)
        impl_out = impl_results[impl_output] if impl_output else next(
            iter(impl_results.values())
        )
        for lane, (s, m) in enumerate(zip(spec_out, impl_out)):
            if s != m:
                return {w: stimuli[w][lane] for w in spec_words}
    return None


def _side_polynomial(
    design: Design,
    field: GF2m,
    output_word: Optional[str],
    case2: str,
    jobs: Optional[int],
    cache,
    counters,
    inflight,
    prepass: Optional[bool],
) -> "tuple[Polynomial, Dict[str, object], bool]":
    """One side's canonical polynomial through the shared pipeline stage.

    Flat circuits route through :func:`repro.prepass.abstract_canonical`
    (prepass + canonical/raw cache keys + extraction); hierarchical designs
    keep the block-wise composition path (already decomposed, no cache).
    Returns ``(polynomial, stats, cache_hit)``.
    """
    if isinstance(design, HierarchicalCircuit):
        poly, stats = canonical_polynomial(design, field, output_word, case2, jobs=jobs)
        return poly, stats, False

    from ..prepass import abstract_canonical
    from ..jobs.cache import rehydrate_polynomial

    probe = abstract_canonical(
        design,
        field,
        output_word=output_word,
        case2=case2,
        jobs=jobs,
        cache=cache,
        counters=counters,
        inflight=inflight,
        prepass=prepass,
    )
    poly = rehydrate_polynomial(probe.payload, field)
    stats: Dict[str, object] = dict(probe.payload["stats"])
    stats["cache_hit"] = probe.hit
    stats["output_word"] = probe.payload["output_word"]
    result = probe.result
    if result is not None and result.stats.jobs:
        stats["parallel"] = {
            "jobs": result.stats.jobs,
            "cones": result.stats.cones,
            "cone_division_steps": list(result.stats.cone_division_steps),
            "pool_utilization_pct": round(result.stats.pool_utilization_pct, 1),
            "pool_idle_seconds": round(result.stats.pool_idle_seconds, 4),
            "table_rebuilds": result.stats.table_rebuilds,
        }
    if probe.prepass is not None:
        stats["prepass"] = probe.prepass.stats()
    return poly, stats, probe.hit


def verify_equivalence(
    spec: Design,
    impl: Design,
    field: GF2m,
    spec_output: Optional[str] = None,
    impl_output: Optional[str] = None,
    word_map: Optional[Dict[str, str]] = None,
    case2: str = "linearized",
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    cache=None,
    counters: Optional[Dict[str, int]] = None,
    inflight=None,
    prepass: Optional[bool] = None,
) -> EquivalenceOutcome:
    """Decide whether two designs implement the same word-level function.

    ``word_map`` renames impl input words to spec input words when the
    designs use different names (identity by default). Output words may
    differ in name (``Z`` vs ``G``); only the polynomials are compared.
    ``seed`` makes the counterexample search reproducible across batch
    runs; the default keeps the historical fixed-seed behavior. ``jobs``
    turns on cone-sliced parallel abstraction for flat designs — both
    sides still yield bit-identical canonical polynomials.

    ``cache`` (a :class:`~repro.jobs.cache.CanonicalPolyCache`),
    ``counters`` (mutated hit/miss accounting dict) and ``inflight``
    (single-flight group) opt each flat side into the content-addressed
    cache — the batch executor and the service pass them. ``prepass``
    overrides the structural pre-reduction tri-state (None defers to
    ``REPRO_PREPASS``, which defaults on).
    """
    start = time.perf_counter()
    spec_words = _input_words(spec)
    impl_words = _input_words(impl)
    word_map = word_map or {}
    translated = sorted(word_map.get(w, w) for w in impl_words)
    if translated != sorted(spec_words):
        raise ValueError(
            f"input words do not match: spec {sorted(spec_words)}, "
            f"impl {translated} (after word_map)"
        )

    with span("abstract", side="spec"):
        spec_poly, spec_stats, spec_hit = _side_polynomial(
            spec, field, spec_output, case2, jobs, cache, counters, inflight, prepass
        )
    with span("abstract", side="impl"):
        impl_poly, impl_stats, impl_hit = _side_polynomial(
            impl, field, impl_output, case2, jobs, cache, counters, inflight, prepass
        )

    with span("coeff_match"):
        # Re-home both polynomials into one shared ring over the spec's words.
        ring = word_ring_for(field, sorted(spec_words))

        def rehome(poly: Polynomial, rename: Dict[str, str]) -> Polynomial:
            data = {}
            source = poly.ring
            for monomial, coeff in poly.terms.items():
                key = tuple(
                    sorted(
                        (ring.index[rename.get(source.variables[v], source.variables[v])], e)
                        for v, e in monomial
                    )
                )
                data[key] = coeff
            return Polynomial(ring, data)

        spec_canonical = rehome(spec_poly, {})
        impl_canonical = rehome(impl_poly, word_map)
        equivalent = spec_canonical == impl_canonical
    elapsed = time.perf_counter() - start
    details = {
        "spec": spec_stats,
        "impl": impl_stats,
        "spec_polynomial": str(spec_canonical),
        "impl_polynomial": str(impl_canonical),
        "spec_terms": len(spec_canonical),
        "impl_terms": len(impl_canonical),
        "spec_cache_hit": spec_hit,
        "impl_cache_hit": impl_hit,
    }
    if equivalent:
        return EquivalenceOutcome("equivalent", "abstraction", None, elapsed, details)
    with span("counterexample_search"):
        counterexample = counterexample_by_simulation(
            spec,
            impl,
            field,
            list(spec_words),
            word_map,
            spec_output,
            impl_output,
            rng=random.Random(0xDAC14 if seed is None else seed),
        )
        if counterexample is None:
            # Algebraic fallback: search the nonzero difference polynomial.
            difference = spec_canonical + impl_canonical
            counterexample = find_nonzero_point(
                difference,
                exhaustive_limit=1 << 12,
                samples=500,
                rng=random.Random(2014 if seed is None else seed + 1),
            )
    return EquivalenceOutcome(
        "not_equivalent", "abstraction", counterexample, elapsed, details
    )
