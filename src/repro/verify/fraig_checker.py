"""AIG-based CEC with SAT sweeping — the closest stand-in for ABC [4].

Both circuits are mapped into one AIG over shared word inputs (structural
hashing already merges syntactically common logic); fraiging then merges
semantically equivalent internal nodes via bounded SAT queries; finally
each output-bit pair is proven equal or a counterexample/budget-exhaustion
is reported. The sweep statistics expose *why* the method wins on similar
circuits and loses on dissimilar ones: the fraction of merged nodes.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..aig import Aig, circuit_to_aig, prove_lit_equal, sat_sweep
from ..circuits import Circuit
from ..obs import metrics
from ..obs.spans import span
from .outcome import EquivalenceOutcome

__all__ = ["check_equivalence_fraig"]


def check_equivalence_fraig(
    spec: Circuit,
    impl: Circuit,
    max_conflicts_per_query: int = 200,
    max_conflicts_final: Optional[int] = 100_000,
    word_map: Optional[Dict[str, str]] = None,
    output_map: Optional[Dict[str, str]] = None,
) -> EquivalenceOutcome:
    """Prove/refute equivalence by fraiging the joint AIG."""
    start = time.perf_counter()
    word_map = word_map or {}
    output_map = output_map or {}
    impl_inputs = {word_map.get(w, w): b for w, b in impl.input_words.items()}
    impl_outputs = {output_map.get(w, w): b for w, b in impl.output_words.items()}
    if set(spec.input_words) != set(impl_inputs) or set(spec.output_words) != set(
        impl_outputs
    ):
        raise ValueError("circuits have different word interfaces")

    aig = Aig()
    shared: Dict[str, int] = {}
    input_of_node: Dict[int, "tuple[str, int]"] = {}
    spec_input_lits: Dict[str, int] = {}
    impl_input_lits: Dict[str, int] = {}
    for word in sorted(spec.input_words):
        spec_bits = spec.input_words[word]
        impl_bits = impl_inputs[word]
        if len(spec_bits) != len(impl_bits):
            raise ValueError(f"word {word!r} has different widths")
        for i, (sb, ib) in enumerate(zip(spec_bits, impl_bits)):
            lit = aig.add_input()
            shared[f"{word}:{i}"] = lit
            input_of_node[lit >> 1] = (word, i)
            spec_input_lits[sb] = lit
            impl_input_lits[ib] = lit

    _, spec_lits = circuit_to_aig(spec, aig, spec_input_lits)
    _, impl_lits = circuit_to_aig(impl, aig, impl_input_lits)

    with span("fraig_sweep", and_nodes=aig.num_ands()):
        sweep = sat_sweep(aig, max_conflicts_per_query=max_conflicts_per_query)
    metrics.counter_add(metrics.FRAIG_QUERIES, sweep.queries)
    metrics.counter_add(metrics.FRAIG_MERGED, sweep.merged)
    details = {
        "and_nodes": aig.num_ands(),
        "queries": sweep.queries,
        "merged": sweep.merged,
        "refuted": sweep.sat_refuted,
        "sweep_unknown": sweep.unknown,
    }

    def counterexample_from(pattern: Dict[int, int]) -> Dict[str, int]:
        words = {w: 0 for w in spec.input_words}
        for node, bit in pattern.items():
            if bit and node in input_of_node:
                word, i = input_of_node[node]
                words[word] |= 1 << i
        return words

    for word in sorted(spec.output_words):
        for sb, ib in zip(spec.output_words[word], impl_outputs[word]):
            status, pattern = prove_lit_equal(
                aig,
                sweep.canon,
                spec_lits[sb],
                impl_lits[ib],
                max_conflicts=max_conflicts_final,
            )
            if status == "diff":
                return EquivalenceOutcome(
                    "not_equivalent",
                    "fraig-cec",
                    counterexample_from(pattern),
                    time.perf_counter() - start,
                    details,
                )
            if status == "unknown":
                return EquivalenceOutcome(
                    "unknown",
                    "fraig-cec",
                    None,
                    time.perf_counter() - start,
                    details,
                )
    return EquivalenceOutcome(
        "equivalent", "fraig-cec", None, time.perf_counter() - start, details
    )
