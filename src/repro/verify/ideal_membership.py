"""Ideal-membership verification — the Lv et al. [5] baseline.

Given a *known* specification polynomial ``F`` and a circuit ``C``, [5]
verifies ``C`` implements ``Z = F(A, B, ...)`` by testing whether the spec
polynomial ``f : Z + F`` is a member of the circuit ideal ``J + J_0`` — a
sequence of divisions (reductions) of ``f`` modulo the circuit polynomials.
The circuit is correct iff the remainder is zero.

Contrast with the paper's contribution: here the spec must be *given*; the
abstraction engine instead *derives* it. The cost profile also differs —
membership reduction drags the full spec expression (expanded to bit level)
through the entire flattened circuit, which is what explodes on cascaded
multiplier structures (flattened Montgomery), while per-block abstraction
does not. The comparison benchmark demonstrates exactly that gap.
"""

from __future__ import annotations

import time
from itertools import product as cartesian_product
from typing import Dict, FrozenSet, Optional

from ..algebra import Polynomial
from ..circuits import Circuit
from ..core.abstraction import reduce_through_gates
from ..core.bitpoly import SubstitutionEngine
from ..core.rato import build_rato
from ..gf import GF2m
from ..obs.spans import span
from .outcome import EquivalenceOutcome

__all__ = ["check_ideal_membership"]


def _expand_spec_into_bits(
    spec: Polynomial,
    circuit: Circuit,
    field: GF2m,
    id_of: Dict[str, int],
    engine: SubstitutionEngine,
    max_terms: int = 5_000_000,
) -> None:
    """Add ``F(A, B, ...)`` to the engine with words expanded into bits.

    Each word power ``W^e`` becomes ``(sum_i a_i alpha^i)^e``; expansion is
    performed term by term with idempotent bit monomials. Practical for the
    low-degree specs arithmetic circuits have (``A*B``, ``A^2``, ...).
    """
    alpha_powers = field.alpha_powers()
    word_bits = {
        word: [id_of[b] for b in bits] for word, bits in circuit.input_words.items()
    }
    for monomial, coeff in spec.terms.items():
        # terms: dict {frozenset(bit ids): coeff} for this spec monomial
        partial: Dict[FrozenSet[int], int] = {frozenset(): coeff}
        for var, exp in monomial:
            word = spec.ring.variables[var]
            bits = word_bits[word]
            for _ in range(exp):
                expanded: Dict[FrozenSet[int], int] = {}
                for base, c in partial.items():
                    for i, bit_id in enumerate(bits):
                        key = base | {bit_id}
                        cc = field.mul(c, alpha_powers[i])
                        if not cc:
                            continue
                        merged = expanded.get(key, 0) ^ cc
                        if merged:
                            expanded[key] = merged
                        else:
                            del expanded[key]
                partial = expanded
                if len(partial) > max_terms:
                    raise MemoryError(
                        "spec expansion exceeded the term budget; the "
                        "membership baseline is infeasible for this spec"
                    )
        engine.add_terms(partial.items())


def _bit_counterexample(
    engine: SubstitutionEngine, circuit: Circuit, id_of: Dict[str, int]
) -> Optional[Dict[str, int]]:
    """An input-word assignment on which the nonzero remainder is nonzero."""
    used_ids = engine.variables_present()
    bit_of_id = {}
    for word, bits in circuit.input_words.items():
        for i, net in enumerate(bits):
            bit_of_id[id_of[net]] = (word, i)
    used = sorted(used_ids)
    if len(used) > 18:
        used = used[:18]  # enumerate a slice; unset bits stay 0
    for pattern in cartesian_product((0, 1), repeat=len(used)):
        assignment = dict(zip(used, pattern))
        total = 0
        for monomial, coeff in engine.terms.items():
            if all(assignment.get(v, 0) for v in monomial):
                total ^= coeff
        if total:
            words = {w: 0 for w in circuit.input_words}
            for var, value in assignment.items():
                if value and var in bit_of_id:
                    word, i = bit_of_id[var]
                    words[word] |= 1 << i
            return words
    return None


def check_ideal_membership(
    circuit: Circuit,
    field: GF2m,
    spec: Polynomial,
    output_word: Optional[str] = None,
) -> EquivalenceOutcome:
    """Verify ``circuit`` implements ``Z = spec(words)`` à la Lv et al. [5].

    ``spec`` lives in a ring whose variables are the circuit's input words.
    """
    start = time.perf_counter()
    if output_word is None:
        if len(circuit.output_words) != 1:
            raise ValueError("output_word must be named for multi-word circuits")
        output_word = next(iter(circuit.output_words))
    ordering = build_rato(circuit, output_words=[output_word])
    id_of = ordering.var_ids
    # Only gate variables are eliminated here; index nothing else.
    engine = SubstitutionEngine(
        field, indexed_vars={id_of[net] for net in ordering.gate_nets}
    )
    alpha_powers = field.alpha_powers()
    # f = Z + F with Z written bit-level: sum alpha^i z_i + F(bits of A, B).
    for i, bit in enumerate(circuit.output_words[output_word]):
        engine.add_term(frozenset((id_of[bit],)), alpha_powers[i])
    with span("spoly_reduction", method="ideal_membership", gates=circuit.num_gates()):
        _expand_spec_into_bits(spec, circuit, field, id_of, engine)
        reduce_through_gates(circuit, engine, ordering)
    elapsed = time.perf_counter() - start
    details = {
        "remainder_terms": len(engine.terms),
        "peak_terms": engine.peak_terms,
        "substitutions": engine.substitutions,
        "term_traffic": engine.term_traffic,
    }
    if not engine.terms:
        return EquivalenceOutcome(
            "equivalent", "ideal-membership", None, elapsed, details
        )
    counterexample = _bit_counterexample(engine, circuit, id_of)
    return EquivalenceOutcome(
        "not_equivalent", "ideal-membership", counterexample, elapsed, details
    )
