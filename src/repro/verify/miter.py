"""Miter construction for bit-level equivalence checking.

A miter ties two circuits' primary inputs together (word-wise), XORs each
output bit pair, and ORs the XORs into a single net that is satisfiable iff
the circuits differ somewhere — the standard reduction equivalence checkers
(the paper's ABC [4] / CSAT [13] baselines) operate on.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..circuits import Circuit, GateType

__all__ = ["build_miter"]


def build_miter(
    spec: Circuit,
    impl: Circuit,
    name: str = "miter",
    word_map: Dict[str, str] = None,
    output_map: Dict[str, str] = None,
) -> Tuple[Circuit, str]:
    """Build the miter of two word-compatible circuits.

    ``word_map``/``output_map`` translate impl word names to spec word names
    when they differ (e.g. a Montgomery ``G`` against a Mastrovito ``Z``);
    identity by default. Returns ``(miter_circuit, diff_net)`` where
    ``diff_net`` is 1 exactly on input assignments the circuits disagree on.
    """
    word_map = word_map or {}
    output_map = output_map or {}
    impl_inputs = {word_map.get(w, w): bits for w, bits in impl.input_words.items()}
    impl_outputs = {output_map.get(w, w): bits for w, bits in impl.output_words.items()}
    if set(spec.input_words) != set(impl_inputs):
        raise ValueError(
            f"input words differ: {sorted(spec.input_words)} vs "
            f"{sorted(impl_inputs)}"
        )
    if set(spec.output_words) != set(impl_outputs):
        raise ValueError(
            f"output words differ: {sorted(spec.output_words)} vs "
            f"{sorted(impl_outputs)}"
        )
    miter = Circuit(name)
    spec_inst = spec.renamed("spec__")
    impl_inst = impl.renamed("impl__")
    impl_inst_inputs = {
        word_map.get(w, w): bits for w, bits in impl_inst.input_words.items()
    }
    impl_inst_outputs = {
        output_map.get(w, w): bits for w, bits in impl_inst.output_words.items()
    }

    # Shared primary inputs, one per word bit.
    alias: Dict[str, str] = {}
    for word, spec_bits in spec_inst.input_words.items():
        impl_bits = impl_inst_inputs[word]
        if len(spec_bits) != len(impl_bits):
            raise ValueError(f"word {word!r} has different widths")
        for i, (sb, ib) in enumerate(zip(spec_bits, impl_bits)):
            shared = f"{word}_{i}"
            miter.add_input(shared)
            alias[sb] = shared
            alias[ib] = shared
        miter.add_input_word(word, [f"{word}_{i}" for i in range(len(spec_bits))])

    for inst in (spec_inst, impl_inst):
        for gate in inst.topological_order():
            miter.add_gate(
                gate.output, gate.gate_type, [alias.get(n, n) for n in gate.inputs]
            )

    xor_bits = []
    for word, spec_bits in spec_inst.output_words.items():
        impl_bits = impl_inst_outputs[word]
        if len(spec_bits) != len(impl_bits):
            raise ValueError(f"output word {word!r} has different widths")
        for sb, ib in zip(spec_bits, impl_bits):
            xor_bits.append(miter.XOR(alias.get(sb, sb), alias.get(ib, ib)))
    if len(xor_bits) == 1:
        diff = miter.BUF(xor_bits[0], out="diff")
    else:
        diff = miter.add_gate("diff", GateType.OR, xor_bits)
    miter.set_outputs([diff])
    return miter, diff
