"""Shared result type for every equivalence-checking method."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["EquivalenceOutcome"]


@dataclass
class EquivalenceOutcome:
    """Verdict of an equivalence check.

    ``status``: ``"equivalent"``, ``"not_equivalent"`` or ``"unknown"``
    (resource budget exhausted). ``counterexample`` maps input word names to
    residues on which the designs differ (when available). ``details``
    carries method-specific statistics (conflicts, node counts, polynomial
    sizes, wall time) for the benchmark harness.
    """

    status: str
    method: str
    counterexample: Optional[Dict[str, int]] = None
    seconds: float = 0.0
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in ("equivalent", "not_equivalent", "unknown"):
            raise ValueError(f"bad status {self.status!r}")

    @property
    def equivalent(self) -> bool:
        return self.status == "equivalent"

    @property
    def decided(self) -> bool:
        return self.status != "unknown"

    def __str__(self) -> str:
        extra = ""
        if self.counterexample:
            pretty = ", ".join(
                f"{w}={v:#x}" for w, v in sorted(self.counterexample.items())
            )
            extra = f" (counterexample: {pretty})"
        return f"[{self.method}] {self.status}{extra} in {self.seconds:.3f}s"
