"""Counterexample extraction from differing canonical polynomials.

When two circuits' canonical polynomials ``G1 != G2`` the difference
``D = G1 + G2`` is a nonzero canonical polynomial, hence a nonzero
*function* on ``F_q^n`` (Definition 3.1 uniqueness) — some input point
witnesses the disagreement. Small domains are exhausted; larger ones are
sampled (Schwartz–Zippel: a random point misses a nonzero low-degree
polynomial with probability at most ``deg/q``).
"""

from __future__ import annotations

import random
from itertools import product as cartesian_product
from typing import Dict, Optional

from ..algebra import Polynomial

__all__ = ["find_nonzero_point"]


def find_nonzero_point(
    difference: Polynomial,
    exhaustive_limit: int = 1 << 16,
    samples: int = 20000,
    seed: int = 2014,
    rng: Optional[random.Random] = None,
) -> Optional[Dict[str, int]]:
    """A point where ``difference`` evaluates nonzero, or None if not found.

    Unused ring variables are fixed to 0 in the returned assignment.
    ``rng`` (when given) overrides ``seed`` — callers that need a
    reproducible batch thread one generator through every search.
    """
    if difference.is_zero():
        return None
    ring = difference.ring
    q = ring.field.order
    used = difference.variables_used()
    full = {name: 0 for name in ring.variables}

    domain_size = q ** len(used) if used else 1
    if not used:
        return dict(full)  # nonzero constant differs everywhere
    if domain_size <= exhaustive_limit:
        for point in cartesian_product(range(q), repeat=len(used)):
            assignment = dict(zip(used, point))
            if difference.evaluate(assignment):
                full.update(assignment)
                return full
        return None  # unreachable for canonical nonzero polynomials
    rng = rng or random.Random(seed)
    for _ in range(samples):
        assignment = {name: rng.randrange(q) for name in used}
        if difference.evaluate(assignment):
            full.update(assignment)
            return full
    return None
