"""Equivalence verification front-end: the paper's flow plus all baselines."""

from .bdd_checker import check_equivalence_bdd
from .counterexample import find_nonzero_point
from .equivalence import canonical_polynomial, verify_equivalence
from .fraig_checker import check_equivalence_fraig
from .fullgb import FullGroebnerResult, abstract_via_full_groebner
from .ideal_membership import check_ideal_membership
from .miter import build_miter
from .outcome import EquivalenceOutcome
from .sat_checker import check_equivalence_sat

__all__ = [
    "verify_equivalence",
    "canonical_polynomial",
    "EquivalenceOutcome",
    "build_miter",
    "check_equivalence_sat",
    "check_equivalence_bdd",
    "check_equivalence_fraig",
    "check_ideal_membership",
    "abstract_via_full_groebner",
    "FullGroebnerResult",
    "find_nonzero_point",
]
