"""SAT-based miter equivalence checking (the ABC/CSAT baseline of Sec. 6).

Encodes the miter with Tseitin, asserts the difference output, and runs the
built-in CDCL solver. A conflict budget turns runaway instances into an
``unknown`` verdict — the paper's observation is precisely that this method
cannot decide GF-multiplier miters beyond ~16 bits in any reasonable budget.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..circuits import Circuit
from ..obs import metrics
from ..obs.spans import span
from ..sat import SatSolver, tseitin_encode
from .miter import build_miter
from .outcome import EquivalenceOutcome

__all__ = ["check_equivalence_sat"]


def check_equivalence_sat(
    spec: Circuit,
    impl: Circuit,
    max_conflicts: Optional[int] = None,
    word_map: Optional[Dict[str, str]] = None,
    output_map: Optional[Dict[str, str]] = None,
) -> EquivalenceOutcome:
    """Prove/refute equivalence by SAT on the miter."""
    start = time.perf_counter()
    with span("sat_miter", budget=max_conflicts) as trace_span:
        miter, diff_net = build_miter(
            spec, impl, word_map=word_map, output_map=output_map
        )
        encoding = tseitin_encode(miter)
        encoding.cnf.add_clause((encoding.variable(diff_net),))
        solver = SatSolver(encoding.cnf)
        result = solver.solve(max_conflicts=max_conflicts)
        if trace_span is not None:
            trace_span.set_tag("status", result.status)
        metrics.counter_add(metrics.SAT_CONFLICTS, result.conflicts)
        metrics.counter_add(metrics.SAT_DECISIONS, result.decisions)
        metrics.counter_add(metrics.SAT_PROPAGATIONS, result.propagations)
    elapsed = time.perf_counter() - start
    details = {
        "conflicts": result.conflicts,
        "decisions": result.decisions,
        "propagations": result.propagations,
        "clauses": len(encoding.cnf),
        "variables": encoding.cnf.num_vars,
    }
    if result.status == "unsat":
        return EquivalenceOutcome("equivalent", "sat-miter", None, elapsed, details)
    if result.status == "sat":
        assignment = encoding.assignment_of(result.model)
        counterexample = {}
        for word, bits in miter.input_words.items():
            value = 0
            for i, net in enumerate(bits):
                value |= int(assignment.get(net, False)) << i
            counterexample[word] = value
        return EquivalenceOutcome(
            "not_equivalent", "sat-miter", counterexample, elapsed, details
        )
    return EquivalenceOutcome("unknown", "sat-miter", None, elapsed, details)
