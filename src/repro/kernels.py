"""Kernel-path selection for the batched reduction engines.

The hot reduction loops ship in two implementations:

- **batched** (the default): one Python-level operation advances a whole
  frontier of terms — set-valued substitution sweeps, spliced tail sets,
  vectorised word-relation division through ``GF2m.mul_vec``;
- **legacy**: the per-term dict kernels the batched rewrite replaced,
  kept verbatim behind ``REPRO_BATCH_KERNELS=0`` (mirroring
  ``REPRO_GF_TABLES``) as the in-tree differential oracle and as the
  honest baseline for before/after benchmarking.

Both paths are term-for-term identical and replay byte-identical REDTRACE
streams; the CI kernel-differential step and the property suite enforce
this on every change. The switch is read from the environment on every
call so tests can flip it per-case without re-importing anything.
"""

from __future__ import annotations

import os

__all__ = ["BATCHED", "LEGACY", "active_kernel", "batch_enabled"]

BATCHED = "batched"
LEGACY = "legacy"


def batch_enabled() -> bool:
    """Honour the ``REPRO_BATCH_KERNELS`` switch (default: enabled)."""
    return os.environ.get("REPRO_BATCH_KERNELS", "1") != "0"


def active_kernel() -> str:
    """The active kernel path name, for run logs and ``/metrics`` tagging."""
    return BATCHED if batch_enabled() else LEGACY
